package simd

import "container/list"

// cache is a plain LRU over completed campaign results, keyed by
// Request.CacheKey. Results are immutable once stored (the engine never
// mutates a *Result after completion), so hits can hand out the shared
// pointer without copying. Not goroutine-safe; the engine serialises
// access under its own mutex.
type cache struct {
	cap     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key string
	res *Result
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result and marks it most recently used.
func (c *cache) get(key string) (*Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores the result, evicting the least recently used entry when
// the cache is full. A zero or negative capacity disables caching.
func (c *cache) put(key string, res *Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

func (c *cache) len() int { return c.order.Len() }
