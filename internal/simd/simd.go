// Package simd is the simulation service: replica campaigns over the
// netspec wire format, run as jobs behind an HTTP API (cmd/btsimd).
// A job is a Request — one or more Specs, a seed range, a slot horizon
// — executed on the internal/runner pool under the same replica
// discipline the experiments layer uses, so a campaign run through the
// service returns byte-identical JSON to the same campaign run
// in-process. Jobs queue FIFO behind a bounded set of runner slots,
// cancel via context at replica-chunk granularity, stream progress and
// live metrics snapshots over SSE, and completed results land in an
// LRU cache keyed by the canonical request hash, so resubmitting a
// campaign is a lookup, not a simulation.
//
// Live snapshots never touch the campaign replicas: a separate monitor
// replica (same world, first seed) runs alongside the sweep and has its
// metrics window read and reset per snapshot period. ResetMetrics on a
// campaign replica would change its reported window and break the
// determinism contract; the monitor's windows are observational only.
package simd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/runner"
)

// Options sizes the engine. The zero value is a usable default.
type Options struct {
	// MaxJobs is the number of campaigns running concurrently
	// (default 2). Each runs its own runner pool of Workers workers.
	MaxJobs int
	// QueueDepth bounds the jobs waiting behind the runner slots
	// (default 16); submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// CacheSize is the result-cache capacity in campaigns (default 64;
	// negative disables caching).
	CacheSize int
	// CheckpointCacheSize is the checkpoint-cache capacity in settled
	// worlds for forked campaigns (default 16; negative disables).
	// Checkpoints are bigger than results — a serialized world, not a
	// metrics table — so the default is deliberately smaller.
	CheckpointCacheSize int
	// Workers is each campaign's runner pool size (0 = the runner
	// package default, runner.Serial = in-line).
	Workers int
	// SnapshotSlots is the monitor replica's window length: every
	// SnapshotSlots simulated slots, a live Metrics window is published
	// to the job's event stream. 0 disables the monitor entirely.
	SnapshotSlots uint64
}

// ErrQueueFull is returned by Submit when the job queue is at
// QueueDepth; the HTTP layer maps it to 429.
var ErrQueueFull = errors.New("simd: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("simd: engine closed")

// Engine owns the job table, the FIFO queue, the runner slots and the
// result cache.
type Engine struct {
	opt     Options
	queue   chan *Job
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID int
	cache  *lru[*Result]
	hits   uint64
	misses uint64
	closed bool

	// cks is the checkpoint store for forked campaigns; it carries its
	// own lock because settles run on the job goroutines, not under mu.
	cks *ckStore
}

// New starts an engine with MaxJobs runner goroutines.
func New(opt Options) *Engine {
	if opt.MaxJobs <= 0 {
		opt.MaxJobs = 2
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 16
	}
	if opt.CacheSize == 0 {
		opt.CacheSize = 64
	}
	if opt.CheckpointCacheSize == 0 {
		opt.CheckpointCacheSize = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		opt:     opt,
		queue:   make(chan *Job, opt.QueueDepth),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		cache:   newLRU[*Result](opt.CacheSize),
		cks:     newCkStore(opt.CheckpointCacheSize),
	}
	e.wg.Add(opt.MaxJobs)
	for i := 0; i < opt.MaxJobs; i++ {
		go e.runLoop()
	}
	return e
}

// Drain retires the engine gracefully: intake closes immediately
// (Submit returns ErrClosed), jobs still waiting in the queue are
// canceled without ever taking a slot, and running campaigns keep
// their slots until they finish on their own. It returns nil once
// every job is terminal — at which point every SSE subscriber has
// received its terminal frame — or ctx.Err() if the deadline passes
// first; either way the caller follows with Close, which cancels any
// stragglers.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	var queued []*Job
	for _, j := range e.jobs {
		if j.State() == StateQueued {
			queued = append(queued, j)
		}
	}
	e.mu.Unlock()
	for _, j := range queued {
		j.Cancel()
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if e.idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// idle reports whether every submitted job is terminal.
func (e *Engine) idle() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		if !j.State().terminal() {
			return false
		}
	}
	return true
}

// Close cancels every queued and running job and waits for the runner
// goroutines to drain. Submitting afterwards returns ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.stop()
	e.wg.Wait()
	// Anything still queued or running went down with the base context;
	// mark it canceled so the job table ends in a terminal state.
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		j.finish(StateCanceled, nil, "engine closed")
	}
}

// Submit validates the request, consults the result cache, and either
// returns a job that is already done (cache hit) or enqueues a fresh
// one FIFO. The returned job's ID is the handle for the status, event
// and cancel endpoints.
func (e *Engine) Submit(req Request) (*Job, error) {
	n, err := req.normalized()
	if err != nil {
		return nil, err
	}
	key, err := n.CacheKey()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(e.baseCtx)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		cancel()
		return nil, ErrClosed
	}
	e.nextID++
	job := &Job{
		ID: fmt.Sprintf("j%d", e.nextID), Req: n, Key: key,
		ctx: ctx, cancel: cancel,
		state: StateQueued, subs: make(map[chan Event]struct{}),
		total: len(n.Points) * n.Seeds.Count,
	}
	if res, ok := e.cache.get(key); ok {
		e.hits++
		cancel()
		job.cached = true
		job.done = job.total
		job.state = StateDone
		job.result = res
		e.jobs[job.ID] = job
		e.order = append(e.order, job.ID)
		return job, nil
	}
	e.misses++
	select {
	case e.queue <- job:
	default:
		cancel()
		return nil, ErrQueueFull
	}
	e.jobs[job.ID] = job
	e.order = append(e.order, job.ID)
	return job, nil
}

// Job looks a job up by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// CacheStats is the result cache's hit accounting.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// Stats is the JSON shape of GET /v1/stats.
type Stats struct {
	// QueueDepth is the number of jobs waiting for a runner slot.
	QueueDepth int `json:"queue_depth"`
	// Jobs counts every submitted job by current state.
	Jobs map[State]int `json:"jobs"`
	// Cache is the result cache's accounting.
	Cache CacheStats `json:"cache"`
	// Checkpoints is the checkpoint cache's accounting (forked
	// campaigns only; an unforked engine reports all zeros).
	Checkpoints CacheStats `json:"checkpoints"`
}

// Stats snapshots the engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		QueueDepth: len(e.queue),
		Jobs:       make(map[State]int),
		Cache: CacheStats{
			Hits: e.hits, Misses: e.misses,
			Entries: e.cache.len(), Capacity: e.opt.CacheSize,
		},
		Checkpoints: e.cks.stats(e.opt.CheckpointCacheSize),
	}
	for _, id := range e.order {
		s.Jobs[e.jobs[id].State()]++
	}
	return s
}

// runLoop is one runner slot: it drains the FIFO queue until Close.
func (e *Engine) runLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.baseCtx.Done():
			return
		case job := <-e.queue:
			e.runJob(job)
		}
	}
}

// runJob executes one campaign. Panics (a spec that validates but
// trips a deeper invariant) fail the job instead of killing the slot.
func (e *Engine) runJob(job *Job) {
	defer job.cancel()
	if !job.setRunning() {
		return // canceled while queued
	}
	ctx := job.ctx
	if e.opt.SnapshotSlots > 0 {
		go e.monitor(ctx, job)
	}
	res, err := func() (res *Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("campaign panicked: %v", r)
			}
		}()
		return run(ctx, job.Req, runner.Config{
			Workers: e.opt.Workers,
			Progress: func(_ string, done, total int) {
				job.setProgress(done, total)
			},
		}, e.cks)
	}()
	switch {
	case err != nil && ctx.Err() != nil:
		job.finish(StateCanceled, nil, context.Canceled.Error())
	case err != nil:
		job.finish(StateFailed, nil, err.Error())
	default:
		e.mu.Lock()
		e.cache.put(job.Key, res)
		e.mu.Unlock()
		job.finish(StateDone, res, "")
	}
}

// monitor runs the observational replica: the job's first point under
// its first seed, with the metrics window read and reset once per
// SnapshotSlots. Its windows feed the SSE stream only — the campaign
// replicas never have their windows touched mid-run.
func (e *Engine) monitor(ctx context.Context, job *Job) {
	defer func() { recover() }() // monitor crashes must not take the job down
	spec := job.Req.Points[0]
	s := core.NewSimulation(core.Options{Seed: job.Req.Seeds.First})
	w, err := netspec.Build(s, spec)
	if err != nil {
		return // the campaign will report the same failure
	}
	w.Start()
	if job.Req.SettleSlots > 0 {
		s.RunSlots(job.Req.SettleSlots)
	}
	w.ResetMetrics()
	for done := uint64(0); done < job.Req.Slots; {
		if ctx.Err() != nil {
			return
		}
		n := min(e.opt.SnapshotSlots, job.Req.Slots-done)
		s.RunSlots(n)
		done += n
		job.snapshot(w.Metrics())
		w.ResetMetrics()
	}
}
