package simd

import (
	"context"
	"sync"
)

// State is a job's lifecycle position. Queued jobs wait in FIFO order
// for a runner slot; terminal states (done, failed, canceled) never
// change again.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether the state can never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one SSE frame of a job's progress stream.
type Event struct {
	// Type is the SSE event name: "state", "progress" or "snapshot".
	Type string
	// Data is the frame payload, marshaled to JSON on the wire.
	Data any
}

// StateEvent is the payload of "state" frames and the terminal frame
// every subscriber is guaranteed to receive.
type StateEvent struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

// ProgressEvent is the payload of "progress" frames: completed and
// total replica counts over the whole campaign.
type ProgressEvent struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// subBuffer is the per-subscriber event buffer. Progress and snapshot
// frames may be dropped when a subscriber falls this far behind; the
// terminal state is never lost because the stream handler re-reads the
// job after the channel closes.
const subBuffer = 64

// Job is one submitted campaign. All mutable fields are guarded by mu;
// the immutable identity fields (ID, Req, Key) are set at submit time
// and read freely.
type Job struct {
	// ID is the engine-assigned job identifier ("j1", "j2", ...).
	ID string
	// Req is the normalized request (points folded, defaults applied).
	Req Request
	// Key is the request's cache key.
	Key string

	// ctx governs the job's whole run; cancel is immutable after
	// Submit, so Cancel is race-free against the runner goroutine.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	state  State
	err    string
	result *Result
	cached bool
	done   int
	total  int
	subs   map[chan Event]struct{}
}

// Status is the JSON shape of GET /v1/jobs/{id}.
type Status struct {
	ID     string  `json:"id"`
	State  State   `json:"state"`
	Cached bool    `json:"cached"`
	Done   int     `json:"done"`
	Total  int     `json:"total"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// Status snapshots the job for the API. The result pointer is shared —
// results are immutable after completion.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, State: j.state, Cached: j.cached,
		Done: j.done, Total: j.total,
		Error: j.err, Result: j.result,
	}
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cancellation. Terminal jobs are unaffected; queued
// jobs go terminal immediately, running jobs stop at the next replica
// chunk boundary and are marked canceled by their runner.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == StateQueued {
		j.finishLocked(StateCanceled, nil, "")
	}
	j.mu.Unlock()
}

// Subscribe registers an event channel and returns it along with a
// synthetic catch-up of the job's current state, so late subscribers
// need no replay log. The caller must eventually Unsubscribe.
func (j *Job) Subscribe() (ch chan Event, catchUp []Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	catchUp = []Event{{Type: "state", Data: StateEvent{ID: j.ID, State: j.state, Error: j.err}}}
	if j.total > 0 {
		catchUp = append(catchUp, Event{Type: "progress", Data: ProgressEvent{Done: j.done, Total: j.total}})
	}
	if j.state.terminal() {
		// Closed channel: the stream handler emits its final frame from
		// Status and returns without waiting.
		ch = make(chan Event)
		close(ch)
		return ch, catchUp
	}
	ch = make(chan Event, subBuffer)
	j.subs[ch] = struct{}{}
	return ch, catchUp
}

// Unsubscribe removes a live subscription. Safe to call after the job
// went terminal (the channel is already closed and forgotten).
func (j *Job) Unsubscribe(ch chan Event) {
	j.mu.Lock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

// publishLocked fans an event out to every subscriber, dropping frames
// for subscribers whose buffer is full (the terminal frame is recovered
// from Status by the stream handler, so drops only thin progress).
func (j *Job) publishLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// setRunning transitions queued → running (a lost race with Cancel
// leaves the job canceled and reports false).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.publishLocked(Event{Type: "state", Data: StateEvent{ID: j.ID, State: j.state}})
	return true
}

// setProgress records and publishes campaign progress.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	if done > j.done || total != j.total {
		j.done, j.total = done, total
		j.publishLocked(Event{Type: "progress", Data: ProgressEvent{Done: done, Total: total}})
	}
	j.mu.Unlock()
}

// snapshot publishes a live metrics window from the monitor replica.
func (j *Job) snapshot(data any) {
	j.mu.Lock()
	if !j.state.terminal() {
		j.publishLocked(Event{Type: "snapshot", Data: data})
	}
	j.mu.Unlock()
}

// finish drives the job to a terminal state (idempotent: the first
// transition wins), publishes the terminal frame and closes every
// subscription.
func (j *Job) finish(state State, res *Result, errMsg string) {
	j.mu.Lock()
	j.finishLocked(state, res, errMsg)
	j.mu.Unlock()
}

func (j *Job) finishLocked(state State, res *Result, errMsg string) {
	if j.state.terminal() {
		return
	}
	j.state = state
	j.result = res
	j.err = errMsg
	if res != nil {
		j.done = j.total
	}
	j.publishLocked(Event{Type: "state", Data: StateEvent{ID: j.ID, State: state, Error: errMsg}})
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
	}
}
