package simd

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/runner"
)

// tinySpec is a cheap but non-trivial world: one piconet, one slave,
// a saturating bulk pump. Every engine test that doesn't care about
// the world's contents uses it.
func tinySpec() netspec.Spec {
	return netspec.Spec{
		Piconets: []netspec.Piconet{{Slaves: 1}},
		Traffic:  []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
	}
}

// tinyReq is a campaign over tinySpec that completes in well under a
// second. vary perturbs the seed range so distinct calls miss the cache.
func tinyReq(vary uint64) Request {
	spec := tinySpec()
	return Request{
		Spec:  &spec,
		Seeds: SeedRange{First: 1 + vary, Count: 2},
		Slots: 2000,
	}
}

// blockerReq is a campaign long enough to hold a runner slot until the
// test cancels it (cancellation lands at the next 4096-slot chunk).
func blockerReq() Request {
	spec := tinySpec()
	return Request{
		Spec:  &spec,
		Seeds: SeedRange{First: 900, Count: 1},
		Slots: 5_000_000,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitState(t *testing.T, job *Job, want State) {
	t.Helper()
	waitFor(t, string("job state "+want), func() bool { return job.State() == want })
}

func TestEngineJobLifecycle(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial})
	defer e.Close()

	job, err := e.Submit(tinyReq(0))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.ID == "" {
		t.Fatal("job has no ID")
	}
	waitState(t, job, StateDone)

	st := job.Status()
	if st.Cached {
		t.Fatal("first submission reported a cache hit")
	}
	if st.Done != st.Total || st.Total != 2 {
		t.Fatalf("progress %d/%d, want 2/2", st.Done, st.Total)
	}
	if st.Result == nil || len(st.Result.Points) != 1 || len(st.Result.Points[0].Replicas) != 2 {
		t.Fatalf("result shape wrong: %+v", st.Result)
	}
	if st.Result.Points[0].SpecHash == "" {
		t.Fatal("point carries no spec hash")
	}
	if got, ok := e.Job(job.ID); !ok || got != job {
		t.Fatal("job table lookup failed")
	}
}

func TestEngineCacheHitAndEviction(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial, CacheSize: 1})
	defer e.Close()

	first, err := e.Submit(tinyReq(0))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateDone)

	// Same request again: an instant done job flagged cached, sharing
	// the result, and a hit on the counters.
	again, err := e.Submit(tinyReq(0))
	if err != nil {
		t.Fatal(err)
	}
	if again.State() != StateDone || !again.Status().Cached {
		t.Fatalf("resubmission state %s cached=%v, want instant cached done", again.State(), again.Status().Cached)
	}
	if a, b := first.Status().Result, again.Status().Result; a != b {
		t.Fatal("cache hit did not share the result")
	}
	if s := e.Stats(); s.Cache.Hits != 1 || s.Cache.Misses != 1 || s.Cache.Entries != 1 {
		t.Fatalf("cache counters %+v, want hits=1 misses=1 entries=1", s.Cache)
	}

	// A different campaign evicts the only entry (capacity 1)...
	other, err := e.Submit(tinyReq(50))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, other, StateDone)
	// ...so the original request misses again.
	third, err := e.Submit(tinyReq(0))
	if err != nil {
		t.Fatal(err)
	}
	if third.Status().Cached {
		t.Fatal("evicted entry still hit")
	}
	waitState(t, third, StateDone)
	if s := e.Stats(); s.Cache.Misses != 3 || s.Cache.Entries != 1 {
		t.Fatalf("cache counters after eviction %+v, want misses=3 entries=1", s.Cache)
	}
}

func TestEngineQueueFIFOAndFull(t *testing.T) {
	e := New(Options{MaxJobs: 1, QueueDepth: 2, Workers: runner.Serial})
	defer e.Close()

	blocker, err := e.Submit(blockerReq())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	q1, err := e.Submit(tinyReq(10))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Submit(tinyReq(20))
	if err != nil {
		t.Fatal(err)
	}
	if q1.State() != StateQueued || q2.State() != StateQueued {
		t.Fatalf("states %s/%s, want queued/queued", q1.State(), q2.State())
	}
	if _, err := e.Submit(tinyReq(30)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond QueueDepth: %v, want ErrQueueFull", err)
	}
	if s := e.Stats(); s.QueueDepth != 2 {
		t.Fatalf("stats queue depth %d, want 2", s.QueueDepth)
	}

	// Releasing the slot drains the queue in submission order.
	blocker.Cancel()
	waitState(t, blocker, StateCanceled)
	waitState(t, q1, StateDone)
	waitState(t, q2, StateDone)
}

func TestEngineCancel(t *testing.T) {
	e := New(Options{MaxJobs: 1, QueueDepth: 4, Workers: runner.Serial})
	defer e.Close()

	running, err := e.Submit(blockerReq())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := e.Submit(tinyReq(40))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)

	// A queued job cancels instantly, without ever taking the slot.
	queued.Cancel()
	if queued.State() != StateCanceled {
		t.Fatalf("queued job state %s after Cancel, want canceled", queued.State())
	}

	// A running job stops at the next replica chunk.
	running.Cancel()
	waitState(t, running, StateCanceled)
	if st := running.Status(); st.Result != nil {
		t.Fatal("canceled job carries a result")
	}

	// Cancel on a terminal job is a no-op.
	running.Cancel()
	if running.State() != StateCanceled {
		t.Fatal("Cancel changed a terminal state")
	}

	if s := e.Stats(); s.Jobs[StateCanceled] != 2 {
		t.Fatalf("stats count %d canceled jobs, want 2", s.Jobs[StateCanceled])
	}
}

func TestEngineClose(t *testing.T) {
	e := New(Options{MaxJobs: 1, QueueDepth: 4, Workers: runner.Serial})
	blocker, err := e.Submit(blockerReq())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := e.Submit(tinyReq(60))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	e.Close()
	if blocker.State() != StateCanceled || queued.State() != StateCanceled {
		t.Fatalf("states after Close: %s/%s, want canceled/canceled", blocker.State(), queued.State())
	}
	if _, err := e.Submit(tinyReq(70)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

func TestEngineRejectsInvalidRequests(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial})
	defer e.Close()

	if _, err := e.Submit(Request{Slots: 100}); err == nil {
		t.Fatal("request with no spec accepted")
	}
	spec := tinySpec()
	if _, err := e.Submit(Request{Spec: &spec}); err == nil {
		t.Fatal("request with zero slots accepted")
	}
	bad := netspec.Spec{Piconets: []netspec.Piconet{{Slaves: 9}}}
	_, err := e.Submit(Request{Spec: &bad, Slots: 100})
	var se *netspec.StanzaError
	if !errors.As(err, &se) {
		t.Fatalf("invalid spec error %v, want a wrapped *netspec.StanzaError", err)
	}
}

func TestJobEvents(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial, SnapshotSlots: 256})
	defer e.Close()

	spec := tinySpec()
	job, err := e.Submit(Request{
		Spec:  &spec,
		Seeds: SeedRange{First: 200, Count: 4},
		Slots: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, catchUp := job.Subscribe()
	defer job.Unsubscribe(ch)
	if len(catchUp) == 0 || catchUp[0].Type != "state" {
		t.Fatalf("catch-up %+v, want a leading state frame", catchUp)
	}

	var progress, snapshots int
	var last StateEvent
	deadline := time.After(30 * time.Second)
	for done := false; !done; {
		select {
		case ev, open := <-ch:
			if !open {
				done = true
				break
			}
			switch ev.Type {
			case "state":
				last = ev.Data.(StateEvent)
			case "progress":
				progress++
			case "snapshot":
				snapshots++
				if _, ok := ev.Data.(netspec.Metrics); !ok {
					t.Fatalf("snapshot payload is %T, want netspec.Metrics", ev.Data)
				}
			}
		case <-deadline:
			t.Fatal("event stream never closed")
		}
	}
	if last.State != StateDone {
		t.Fatalf("final state frame %+v, want done", last)
	}
	if progress == 0 {
		t.Fatal("no progress frames over a 4-replica campaign")
	}
	if snapshots == 0 {
		t.Fatal("no snapshot frames despite SnapshotSlots > 0")
	}

	// Subscribing to a terminal job yields a closed channel plus the
	// terminal state as catch-up.
	ch2, catchUp2 := job.Subscribe()
	if _, open := <-ch2; open {
		t.Fatal("terminal subscription channel not closed")
	}
	if st := catchUp2[0].Data.(StateEvent); st.State != StateDone {
		t.Fatalf("terminal catch-up %+v, want done", st)
	}
}

// forkSpec keeps stochastic draws flowing after the fork instant — a
// poisson pump draws a gap per burst — so different fork seeds
// measurably diverge. A pure bulk world at BER 0 exhausts its
// randomness at build time and every fork would be identical.
func forkSpec() netspec.Spec {
	return netspec.Spec{
		Piconets: []netspec.Piconet{{Slaves: 1}},
		Traffic:  []netspec.Traffic{{Kind: netspec.TrafficPoisson, Piconet: netspec.AllPiconets, MeanGapSlots: 30, BurstBytes: 96}},
	}
}

// TestRunForkCampaign pins the forked campaign discipline: replica 0
// is the straight continuation of the settled world, later replicas
// diverge under their fork seeds, and the whole result is reproducible
// byte for byte.
func TestRunForkCampaign(t *testing.T) {
	spec := forkSpec()
	req := Request{
		Spec:        &spec,
		Seeds:       SeedRange{First: 5, Count: 3},
		Slots:       3000,
		SettleSlots: 512,
		Fork:        true,
	}
	res, err := Run(context.Background(), req, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || len(res.Points[0].Replicas) != 3 {
		t.Fatalf("result shape %+v, want 1 point x 3 replicas", res)
	}

	// Replica 0 must equal the straight arm: settle, snapshot (the
	// world continues past the capture), fresh window, same horizon.
	s := core.NewSimulation(core.Options{Seed: req.Seeds.First})
	w, err := netspec.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	s.RunSlots(req.SettleSlots)
	if _, err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	w.ResetMetrics()
	s.RunSlots(req.Slots)
	straight, _ := json.Marshal(w.Metrics())
	rep0, _ := json.Marshal(res.Points[0].Replicas[0])
	if string(rep0) != string(straight) {
		t.Fatalf("fork replica 0 diverged from the straight continuation:\n  fork:     %s\n  straight: %s", rep0, straight)
	}

	// Later replicas perturb the streams and must diverge.
	rep1, _ := json.Marshal(res.Points[0].Replicas[1])
	rep2, _ := json.Marshal(res.Points[0].Replicas[2])
	if string(rep0) == string(rep1) || string(rep1) == string(rep2) {
		t.Fatalf("fork replicas did not diverge:\n  0: %s\n  1: %s\n  2: %s", rep0, rep1, rep2)
	}

	// The campaign is deterministic: a rerun is byte-identical.
	res2, err := Run(context.Background(), req, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(res2)
	if string(a) != string(b) {
		t.Fatal("forked campaign rerun diverged")
	}
}

// TestForkCacheKeyDiffers pins Fork into the request identity: the
// same campaign forked and unforked measures different replica
// ensembles and must never share a cached result.
func TestForkCacheKeyDiffers(t *testing.T) {
	spec := forkSpec()
	req := Request{Spec: &spec, Seeds: SeedRange{First: 5, Count: 2}, Slots: 1000}
	plain, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	req.Fork = true
	forked, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if plain == forked {
		t.Fatal("forked and unforked requests share a cache key")
	}
}

func TestForkRejectsHCIWorlds(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial})
	defer e.Close()
	spec := netspec.Spec{Piconets: []netspec.Piconet{{Slaves: 1, HCI: true}}}
	if _, err := e.Submit(Request{Spec: &spec, Slots: 100, Fork: true}); err == nil {
		t.Fatal("forked HCI campaign accepted")
	}
}

// TestEngineCheckpointCacheReuse pins the checkpoint LRU: two forked
// campaigns over the same settled world (different measured horizons,
// so the result cache misses) share one settle.
func TestEngineCheckpointCacheReuse(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial})
	defer e.Close()
	spec := forkSpec()
	for i, slots := range []uint64{1500, 2500} {
		job, err := e.Submit(Request{
			Spec:        &spec,
			Seeds:       SeedRange{First: 7, Count: 2},
			Slots:       slots,
			SettleSlots: 256,
			Fork:        true,
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitState(t, job, StateDone)
	}
	if s := e.Stats(); s.Checkpoints.Hits != 1 || s.Checkpoints.Misses != 1 || s.Checkpoints.Entries != 1 {
		t.Fatalf("checkpoint cache counters %+v, want hits=1 misses=1 entries=1", s.Checkpoints)
	}
}

// TestEngineCacheConcurrentSubmitHit hammers the result cache from
// many goroutines with a working set larger than its capacity, so
// hits, misses and evictions interleave with running jobs. The
// assertions are invariants — every job terminal-done, entry count
// bounded by capacity, counters consistent — and the race detector
// checks the rest.
func TestEngineCacheConcurrentSubmitHit(t *testing.T) {
	e := New(Options{MaxJobs: 4, Workers: runner.Serial, CacheSize: 2, QueueDepth: 256})
	defer e.Close()

	const submitters, perSubmitter = 8, 12
	var wg sync.WaitGroup
	jobs := make(chan *Job, submitters*perSubmitter)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				// Three distinct campaigns across a capacity-2 cache:
				// repeats hit or re-simulate depending on eviction order.
				job, err := e.Submit(tinyReq(uint64((g + i) % 3)))
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				jobs <- job
			}
		}(g)
	}
	wg.Wait()
	close(jobs)

	results := make(map[string]string) // cache key -> result JSON
	for job := range jobs {
		waitState(t, job, StateDone)
		res, _ := json.Marshal(job.Status().Result)
		if prev, ok := results[job.Key]; ok && prev != string(res) {
			t.Fatalf("same request produced different results:\n  %s\n  %s", prev, res)
		}
		results[job.Key] = string(res)
	}
	s := e.Stats()
	if s.Cache.Entries > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", s.Cache.Entries)
	}
	if got, want := s.Cache.Hits+s.Cache.Misses, uint64(submitters*perSubmitter); got != want {
		t.Fatalf("hits+misses = %d, want %d submissions", got, want)
	}
	if s.Jobs[StateDone] != submitters*perSubmitter {
		t.Fatalf("done jobs %d, want %d", s.Jobs[StateDone], submitters*perSubmitter)
	}
}

// TestEngineDrain pins the graceful-shutdown contract: intake closes,
// queued jobs cancel without taking a slot, running jobs finish.
func TestEngineDrain(t *testing.T) {
	e := New(Options{MaxJobs: 1, QueueDepth: 4, Workers: runner.Serial})
	defer e.Close()

	// Long enough to still be running when Drain starts, short enough
	// to finish well inside the drain budget.
	spec := tinySpec()
	running, err := e.Submit(Request{
		Spec:  &spec,
		Seeds: SeedRange{First: 80, Count: 1},
		Slots: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := e.Submit(tinyReq(81))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if running.State() != StateDone {
		t.Fatalf("running job ended %s, want done", running.State())
	}
	// The queued job may have reached the free slot before Drain marked
	// it; either way it must be terminal, and canceled if it never ran.
	if st := queued.State(); !st.terminal() {
		t.Fatalf("queued job left non-terminal: %s", st)
	}
	if _, err := e.Submit(tinyReq(82)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Drain: %v, want ErrClosed", err)
	}
}

// TestEngineDrainTimeout pins the deadline path: a job longer than the
// budget leaves Drain with the context error, and Close then cancels.
func TestEngineDrainTimeout(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial})
	blocker, err := e.Submit(blockerReq())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain: %v, want deadline exceeded", err)
	}
	e.Close()
	if blocker.State() != StateCanceled {
		t.Fatalf("blocker ended %s after Close, want canceled", blocker.State())
	}
}

// TestRunMatchesRunReplica pins the campaign fan-out to the underlying
// replica discipline: entry [i][j] of a Run result is byte-identical
// JSON to RunReplica on point i, seed First+j.
func TestRunMatchesRunReplica(t *testing.T) {
	spec := tinySpec()
	pair := netspec.Spec{
		Piconets:  netspec.HomogeneousPiconets(2, 1),
		Traffic:   []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
		Placement: netspec.GridPlacement(12, 10),
	}
	req := Request{
		Points:      []netspec.Spec{spec, pair},
		Seeds:       SeedRange{First: 5, Count: 3},
		Slots:       3000,
		SettleSlots: 64,
	}
	res, err := Run(context.Background(), req, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Points {
		for j, m := range p.Replicas {
			want, err := RunReplica(nil, req.Points[i], req.Seeds.First+uint64(j), req.SettleSlots, req.Slots)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(m)
			b, _ := json.Marshal(want)
			if string(a) != string(b) {
				t.Fatalf("points[%d] replica %d diverged from RunReplica:\n  sweep:   %s\n  replica: %s", i, j, a, b)
			}
		}
	}
}
