package simd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a Request; 202 + Status (200 on a cache hit)
//	GET    /v1/jobs/{id}        job status; includes result once done
//	DELETE /v1/jobs/{id}        cancel; 202 + Status
//	GET    /v1/jobs/{id}/events SSE stream: state / progress / snapshot frames
//	GET    /v1/stats            queue depth, per-state job counts, cache counters
//
// Invalid specs come back as 422 with the *netspec.StanzaError text, a
// full queue as 429. All bodies are JSON.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", e.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", e.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", e.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", e.handleEvents)
	mux.HandleFunc("GET /v1/stats", e.handleStats)
	return mux
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	job, err := e.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		// Validation failures, including wrapped *netspec.StanzaError.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	st := job.Status()
	if st.Cached {
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (e *Engine) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := e.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return job, ok
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := e.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (e *Engine) handleCancel(w http.ResponseWriter, r *http.Request) {
	if job, ok := e.job(w, r); ok {
		job.Cancel()
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Stats())
}

// handleEvents streams the job as server-sent events. Every stream
// opens with a catch-up "state" frame (and "progress", once known),
// then carries live frames until the job goes terminal; the closing
// frame is re-read from Status, so even a subscriber whose buffer
// overflowed sees the authoritative final state.
func (e *Engine) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := e.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	emit := func(ev Event) bool {
		data, err := json.Marshal(ev.Data)
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		fl.Flush()
		return err == nil
	}

	ch, catchUp := job.Subscribe()
	defer job.Unsubscribe(ch)
	for _, ev := range catchUp {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: close with the authoritative state frame.
				st := job.Status()
				emit(Event{Type: "state", Data: StateEvent{ID: st.ID, State: st.State, Error: st.Error}})
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}
