package simd

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/runner"
)

// SeedRange names the replica seeds of a campaign: Count consecutive
// seeds starting at First. Replica r of every point runs under seed
// First+r — common random numbers across points, exactly like the
// experiments layer's sweeps.
type SeedRange struct {
	First uint64 `json:"first"`
	Count int    `json:"count"`
}

// Request is the body of POST /v1/jobs: a replica campaign over one or
// more netspec worlds. Either Spec (one point) or Points (a parameter
// sweep, each point a full Spec) names the worlds; Seeds and Slots fix
// the replica seeds and the measurement horizon. The whole request is
// deterministic by construction — resubmitting it yields byte-identical
// results, which is what makes the result cache sound.
type Request struct {
	// Spec is the single-point form. Ignored when Points is non-empty.
	Spec *netspec.Spec `json:"spec,omitempty"`
	// Points is the sweep form: one full Spec per parameter point.
	Points []netspec.Spec `json:"points,omitempty"`
	// Seeds are the replica seeds shared by every point.
	Seeds SeedRange `json:"seeds"`
	// Slots is the measured horizon of every replica.
	Slots uint64 `json:"slots"`
	// SettleSlots run after World.Start and before the measurement
	// window opens (default 0); the paper's coexistence sweeps use a
	// short settle so ARQ pipelines are primed when measurement starts.
	SettleSlots uint64 `json:"settle_slots,omitempty"`
	// Fork switches the campaign to the checkpoint-fork discipline:
	// each point's world is built and settled once under Seeds.First,
	// snapshotted at the next quiescent slot edge, and every replica
	// restores from those bytes instead of rebuilding and re-settling
	// its own world. Replica 0 forks with seed 0 — byte-identical to
	// the straight continuation of the settled world from the capture
	// instant — while replica r >= 1 perturbs the restored RNG streams
	// with fork seed Seeds.First+r.
	// Forked and unforked campaigns measure different (both valid)
	// replica ensembles — perturbed streams over one warm-up versus
	// independent warm-ups — so Fork participates in the cache key.
	// Settle-heavy campaigns pay the settle once instead of once per
	// replica; see BenchmarkCheckpointFork for the rate gap.
	Fork bool `json:"fork,omitempty"`
}

// normalized returns the request with the single-point form folded into
// Points and defaults applied, or an error describing why it can never
// run. Spec validation errors come back as the *netspec.StanzaError the
// spec layer produced, so API clients see the same diagnostics the
// library gives.
func (r Request) normalized() (Request, error) {
	if len(r.Points) == 0 {
		if r.Spec == nil {
			return r, fmt.Errorf("simd: request has neither spec nor points")
		}
		r.Points = []netspec.Spec{*r.Spec}
	}
	r.Spec = nil
	if r.Seeds.Count == 0 {
		r.Seeds.Count = 1
	}
	if r.Seeds.Count < 0 {
		return r, fmt.Errorf("simd: seeds.count %d is negative", r.Seeds.Count)
	}
	if r.Slots == 0 {
		return r, fmt.Errorf("simd: slots must be at least 1")
	}
	for i := range r.Points {
		if err := r.Points[i].Validate(); err != nil {
			return r, fmt.Errorf("simd: points[%d]: %w", i, err)
		}
		if r.Fork {
			for j := range r.Points[i].Piconets {
				if r.Points[i].Piconets[j].HCI {
					return r, fmt.Errorf("simd: points[%d]: piconets[%d]: HCI worlds cannot be checkpoint-forked (host-side state lives outside the world)", i, j)
				}
			}
		}
	}
	return r, nil
}

// CacheKey is the request's identity for the result cache: the hex
// SHA-256 over the canonical encoding of every point plus the seed
// range and horizons. Two requests that build the same worlds and run
// the same replicas — however their specs spelled the defaults — key
// identically.
func (r Request) CacheKey() (string, error) {
	n, err := r.normalized()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var hdr [48]byte
	binary.LittleEndian.PutUint64(hdr[0:], n.Seeds.First)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n.Seeds.Count))
	binary.LittleEndian.PutUint64(hdr[16:], n.Slots)
	binary.LittleEndian.PutUint64(hdr[24:], n.SettleSlots)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(n.Points)))
	if n.Fork {
		// Forked and unforked campaigns over the same points measure
		// different replica ensembles; they must never share a result.
		hdr[40] = 1
	}
	h.Write(hdr[:])
	for i := range n.Points {
		c, err := n.Points[i].Canonical()
		if err != nil {
			return "", fmt.Errorf("simd: points[%d]: %w", i, err)
		}
		var sz [8]byte
		binary.LittleEndian.PutUint64(sz[:], uint64(len(c)))
		h.Write(sz[:])
		h.Write(c)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// PointResult is one parameter point's replica table.
type PointResult struct {
	// SpecHash is the point's canonical spec hash (netspec.Spec.Hash).
	SpecHash string `json:"spec_hash"`
	// Replicas holds one Metrics window per seed, in seed order.
	Replicas []netspec.Metrics `json:"replicas"`
}

// Result is a completed campaign: [point][replica] metrics, the same
// layout runner.Sweep returns, so serial in-process runs and service
// runs are comparable entry by entry.
type Result struct {
	Points []PointResult `json:"points"`
}

// replicaChunkSlots is the horizon granularity at which a running
// replica re-checks its context. Chunking only splits RunSlots calls —
// the kernel advances to the same slot boundaries either way — so the
// chunk size cannot influence results, only cancellation latency.
const replicaChunkSlots = 4096

// RunReplica runs one replica of one point under the campaign
// discipline — build from seed, start, settle, open the window, run the
// horizon — and returns its Metrics window. This exact function is the
// unit the service executes per (point, seed), and cmd/btsim -spec
// calls it too, which is why a CLI run and the matching server replica
// entry are byte-identical JSON. A non-nil ctx cancels between slot
// chunks; the partial window is returned and the caller is responsible
// for discarding it (campaign results never include canceled windows).
func RunReplica(ctx context.Context, spec netspec.Spec, seed, settleSlots, slots uint64) (netspec.Metrics, error) {
	s := core.NewSimulation(core.Options{Seed: seed})
	w, err := netspec.Build(s, spec)
	if err != nil {
		return netspec.Metrics{}, err
	}
	w.Start()
	if settleSlots > 0 {
		s.RunSlots(settleSlots)
	}
	w.ResetMetrics()
	for done := uint64(0); done < slots; {
		if ctx != nil && ctx.Err() != nil {
			return w.Metrics(), ctx.Err()
		}
		n := min(replicaChunkSlots, slots-done)
		s.RunSlots(n)
		done += n
	}
	return w.Metrics(), nil
}

// SettleCheckpoint builds spec under seed, starts its traffic, runs
// the settle horizon and captures the world at the next quiescent slot
// edge, returning the serialized checkpoint. It is the once-per-point
// Prepare half of a forked campaign; the checkpoint embeds the build
// seed, so ForkReplica needs nothing but the bytes.
func SettleCheckpoint(spec netspec.Spec, seed, settleSlots uint64) ([]byte, error) {
	s := core.NewSimulation(core.Options{Seed: seed})
	w, err := netspec.Build(s, spec)
	if err != nil {
		return nil, err
	}
	w.Start()
	if settleSlots > 0 {
		s.RunSlots(settleSlots)
	}
	ck, err := w.Snapshot()
	if err != nil {
		return nil, err
	}
	return ck.Encode()
}

// ForkReplica restores one replica from serialized checkpoint bytes
// under forkSeed (0 resumes the captured streams exactly), opens the
// metrics window at the fork instant and runs the measured horizon.
// Every caller decodes its own copy of the bytes, so concurrent forks
// share nothing. Cancellation mirrors RunReplica: a non-nil ctx stops
// between slot chunks and the partial window must be discarded.
func ForkReplica(ctx context.Context, ckBytes []byte, forkSeed, slots uint64) (netspec.Metrics, error) {
	ck, err := netspec.DecodeCheckpoint(ckBytes)
	if err != nil {
		return netspec.Metrics{}, err
	}
	// The target must rebuild under the capture seed: placement layouts
	// draw from a seed-derived stream, not from checkpointed state.
	s := core.NewSimulation(core.Options{Seed: ck.Core.Seed})
	w, err := netspec.RestoreWorld(s, ck, core.RestoreOptions{ForkSeed: forkSeed})
	if err != nil {
		return netspec.Metrics{}, err
	}
	w.ResetMetrics()
	for done := uint64(0); done < slots; {
		if ctx != nil && ctx.Err() != nil {
			return w.Metrics(), ctx.Err()
		}
		n := min(replicaChunkSlots, slots-done)
		s.RunSlots(n)
		done += n
	}
	return w.Metrics(), nil
}

// Run executes the campaign and returns its result. The replicas fan
// out through runner.Sweep (or runner.ForkSweep when the request asks
// for checkpoint forking) under cfg (workers, progress, context), and
// the [point][replica] result layout is schedule-independent, so any
// worker count — and the serial reference the determinism test uses —
// produces byte-identical Result JSON. A canceled context returns
// ctx.Err() and no result.
func Run(ctx context.Context, req Request, cfg runner.Config) (*Result, error) {
	return run(ctx, req, cfg, nil)
}

// run is Run with an optional shared checkpoint store: the engine
// passes its LRU so repeated forked campaigns on the same settled
// world skip the settle; bare Run settles every time.
func run(ctx context.Context, req Request, cfg runner.Config, cks *ckStore) (*Result, error) {
	n, err := req.normalized()
	if err != nil {
		return nil, err
	}
	cfg.Context = ctx
	type rep struct {
		m   netspec.Metrics
		err error
	}
	var rows [][]rep
	if n.Fork {
		fw := runner.ForkSweep[netspec.Spec, rep]{
			Name:     "campaign",
			Points:   n.Points,
			Replicas: n.Seeds.Count,
			Seed: func(point, replica int) uint64 {
				return n.Seeds.First + uint64(replica)
			},
			Prepare: func(seed uint64, spec netspec.Spec) ([]byte, error) {
				return cks.settle(spec, seed, n.SettleSlots)
			},
			Trial: func(ck []byte, forkSeed uint64, _ netspec.Spec) rep {
				m, err := ForkReplica(ctx, ck, forkSeed, n.Slots)
				return rep{m, err}
			},
		}
		rows, err = fw.Run(cfg)
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("simd: settling checkpoint: %w", err)
		}
	} else {
		sw := runner.Sweep[netspec.Spec, rep]{
			Name:     "campaign",
			Points:   n.Points,
			Replicas: n.Seeds.Count,
			Seed: func(point, replica int) uint64 {
				return n.Seeds.First + uint64(replica)
			},
			Trial: func(seed uint64, spec netspec.Spec) rep {
				m, err := RunReplica(ctx, spec, seed, n.SettleSlots, n.Slots)
				return rep{m, err}
			},
		}
		rows = sw.Run(cfg)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	res := &Result{Points: make([]PointResult, len(n.Points))}
	for i := range n.Points {
		hash, err := n.Points[i].Hash()
		if err != nil {
			return nil, err
		}
		pr := PointResult{SpecHash: hash, Replicas: make([]netspec.Metrics, len(rows[i]))}
		for j, r := range rows[i] {
			if r.err != nil {
				return nil, fmt.Errorf("simd: points[%d] seed %d: %w", i, n.Seeds.First+uint64(j), r.err)
			}
			pr.Replicas[j] = r.m
		}
		res.Points[i] = pr
	}
	return res, nil
}

// ckStore is the checkpoint LRU the engine keeps next to the result
// cache, plus its lock and hit accounting. The result cache keys whole
// campaigns; this one keys settled worlds — (canonical spec, build
// seed, settle horizon, shard count) — so a forked what-if sweep that
// varies only the measured horizon or the replica count still reuses
// the expensive settle. A nil store settles every time.
type ckStore struct {
	mu     sync.Mutex
	lru    *lru[[]byte]
	hits   uint64
	misses uint64
}

func newCkStore(capacity int) *ckStore {
	return &ckStore{lru: newLRU[[]byte](capacity)}
}

// settle returns the serialized settle checkpoint for (spec, seed,
// settleSlots), from the cache when possible. The lock is not held
// across the settle itself; two campaigns racing on the same key both
// simulate and store byte-identical results, which is wasteful but
// correct.
func (c *ckStore) settle(spec netspec.Spec, seed, settleSlots uint64) ([]byte, error) {
	if c == nil {
		return SettleCheckpoint(spec, seed, settleSlots)
	}
	key, err := ckKey(spec, seed, settleSlots)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	b, ok := c.lru.get(key)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if ok {
		return b, nil
	}
	b, err = SettleCheckpoint(spec, seed, settleSlots)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.lru.put(key, b)
	c.mu.Unlock()
	return b, nil
}

// stats snapshots the store for GET /v1/stats.
func (c *ckStore) stats(capacity int) CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.len(), Capacity: capacity}
}

// ckKey is the checkpoint cache key: SHA-256 over the canonical spec
// plus the build seed, the settle horizon and the process-wide shard
// count (a checkpoint only restores into a world with the same shard
// layout).
func ckKey(spec netspec.Spec, seed, settleSlots uint64) (string, error) {
	c, err := spec.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], seed)
	binary.LittleEndian.PutUint64(hdr[8:], settleSlots)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(core.DefaultShards()))
	h.Write(hdr[:])
	h.Write(c)
	return hex.EncodeToString(h.Sum(nil)), nil
}
