// Package lmp implements the Link Manager Protocol layer the paper
// models above the baseband: LMP PDUs ride LLID-3 payloads on the ACL
// link and negotiate connection setup, the low-power modes (sniff, hold,
// park) and detach — so an application can drive mode changes over the
// air instead of poking both ends of the link directly.
package lmp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/baseband"
	"repro/internal/hop"
	"repro/internal/packet"
)

// Opcode identifies an LMP PDU (a representative subset of spec 1.2
// part C).
type Opcode uint8

// LMP opcodes.
const (
	OpAccepted         Opcode = 3
	OpNotAccepted      Opcode = 4
	OpDetach           Opcode = 7
	OpHoldReq          Opcode = 21
	OpSniffReq         Opcode = 23
	OpUnsniffReq       Opcode = 24
	OpParkReq          Opcode = 25
	OpUnparkReq        Opcode = 33
	OpSlotOffset       Opcode = 52
	OpSetAFH           Opcode = 60
	OpSCOLinkReq       Opcode = 43
	OpRemoveSCOLinkReq Opcode = 44
	OpHostConnReq      Opcode = 51
	OpSetupComplete    Opcode = 49
	OpNameReq          Opcode = 1
	OpNameRes          Opcode = 2
	OpVersionReq       Opcode = 37
	OpVersionRes       Opcode = 38
	OpMaxSlot          Opcode = 45
	OpMaxSlotReq       Opcode = 46
	OpTimingAccuracyRq Opcode = 47
	OpTimingAccuracyRs Opcode = 48
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpAccepted:
		return "LMP_accepted"
	case OpNotAccepted:
		return "LMP_not_accepted"
	case OpDetach:
		return "LMP_detach"
	case OpHoldReq:
		return "LMP_hold_req"
	case OpSniffReq:
		return "LMP_sniff_req"
	case OpUnsniffReq:
		return "LMP_unsniff_req"
	case OpParkReq:
		return "LMP_park_req"
	case OpUnparkReq:
		return "LMP_unpark_req"
	case OpSlotOffset:
		return "LMP_slot_offset"
	case OpSetAFH:
		return "LMP_set_AFH"
	case OpSCOLinkReq:
		return "LMP_SCO_link_req"
	case OpRemoveSCOLinkReq:
		return "LMP_remove_SCO_link_req"
	case OpHostConnReq:
		return "LMP_host_connection_req"
	case OpSetupComplete:
		return "LMP_setup_complete"
	case OpVersionReq:
		return "LMP_version_req"
	case OpVersionRes:
		return "LMP_version_res"
	case OpMaxSlot:
		return "LMP_max_slot"
	case OpMaxSlotReq:
		return "LMP_max_slot_req"
	default:
		return fmt.Sprintf("LMP_op(%d)", uint8(o))
	}
}

// btclockMask keeps clock arithmetic in the 28-bit counter.
const btclockMask = (1 << 28) - 1

// modeChangeDeferSlots is how long a responder stays active after
// accepting a hold/park request so the acceptance reaches the peer (the
// spec negotiates an explicit instant; a fixed defer is equivalent here).
const modeChangeDeferSlots = 16

// PDU is a decoded LMP message.
type PDU struct {
	Op     Opcode
	Params []byte
}

// Encode serialises the PDU: opcode byte then parameters (transaction-ID
// bit folded into the opcode byte is omitted in this model).
func (p PDU) Encode() []byte {
	out := make([]byte, 1+len(p.Params))
	out[0] = uint8(p.Op)
	copy(out[1:], p.Params)
	return out
}

// Decode parses an on-air LMP payload.
func Decode(b []byte) (PDU, error) {
	if len(b) == 0 {
		return PDU{}, errors.New("lmp: empty PDU")
	}
	return PDU{Op: Opcode(b[0]), Params: append([]byte(nil), b[1:]...)}, nil
}

// u16 little-endian helpers for parameters.
func putU16(v uint16) []byte {
	b := make([]byte, 2)
	binary.LittleEndian.PutUint16(b, v)
	return b
}

func getU16(b []byte) uint16 { return binary.LittleEndian.Uint16(b) }

// Manager runs the LMP state machine for one device: it owns the
// device's OnLMP callback and exposes request APIs whose acceptance
// applies the mode change on both ends of the link.
type Manager struct {
	dev *Device2

	// OnSetupComplete fires when both sides finished connection setup.
	OnSetupComplete func(l *baseband.Link)
	// OnModeChange fires after a negotiated mode transition applies.
	OnModeChange func(l *baseband.Link, m baseband.Mode)
	// OnDetach fires when the peer detaches the link.
	OnDetach func(l *baseband.Link)
	// OnSCOEstablished fires on the acceptor when a voice channel is
	// installed, so the host can attach Source and Sink.
	OnSCOEstablished func(sco *baseband.SCOLink)

	// OnSlotOffset fires when the peer announces its slot offset (the
	// timing half of the spec's role-switch preamble; scatternet bridges
	// send it before pinning their presence windows).
	OnSlotOffset func(l *baseband.Link, offsetUS uint16, peer baseband.BDAddr)

	pendingAccept map[*baseband.Link]func(accepted bool)
	setupDone     map[*baseband.Link]bool
	setupSent     map[*baseband.Link]bool
	slotOffsets   map[*baseband.Link]uint16

	// deferred counts scheduled mode-change/AFH-switch closures that
	// have not fired yet; a manager with deferred work is mid-transaction
	// and not checkpointable (see Quiescent).
	deferred int
}

// deferAfter schedules fn like Device.After while counting it as an
// in-progress LMP transaction until it fires.
func (m *Manager) deferAfter(slots uint64, fn func()) {
	m.deferred++
	m.dev.After(slots, func() {
		m.deferred--
		fn()
	})
}

// Device2 aliases baseband.Device to keep the Manager declaration tidy.
type Device2 = baseband.Device

// Attach creates a Manager bound to dev's LMP channel.
func Attach(dev *baseband.Device) *Manager {
	m := &Manager{
		dev:           dev,
		pendingAccept: make(map[*baseband.Link]func(bool)),
		setupDone:     make(map[*baseband.Link]bool),
		setupSent:     make(map[*baseband.Link]bool),
		slotOffsets:   make(map[*baseband.Link]uint16),
	}
	dev.OnLMP = m.receive
	return m
}

// Dev returns the underlying baseband device.
func (m *Manager) Dev() *baseband.Device { return m.dev }

// SetupComplete reports whether LMP setup finished on l.
func (m *Manager) SetupComplete(l *baseband.Link) bool { return m.setupDone[l] }

// send queues a PDU on the link.
func (m *Manager) send(l *baseband.Link, p PDU) {
	l.Send(p.Encode(), packet.LLIDLMP)
}

// StartSetup begins connection setup (run on the master after the
// baseband link connects): host_connection_req, answered by accepted,
// then setup_complete both ways.
func (m *Manager) StartSetup(l *baseband.Link) {
	m.send(l, PDU{Op: OpHostConnReq})
}

// RequestSniff negotiates sniff mode for the link (master side).
func (m *Manager) RequestSniff(l *baseband.Link, tsniff, attempt, offset int, result func(bool)) {
	params := append(putU16(uint16(tsniff)), append(putU16(uint16(attempt)), putU16(uint16(offset))...)...)
	m.pendingAccept[l] = func(ok bool) {
		if ok {
			l.EnterSniff(tsniff, attempt, offset)
			m.notifyMode(l, baseband.ModeSniff)
		}
		if result != nil {
			result(ok)
		}
	}
	m.send(l, PDU{Op: OpSniffReq, Params: params})
}

// RequestUnsniff returns the link to active mode.
func (m *Manager) RequestUnsniff(l *baseband.Link, result func(bool)) {
	m.pendingAccept[l] = func(ok bool) {
		if ok {
			l.ExitSniff()
			m.notifyMode(l, baseband.ModeActive)
		}
		if result != nil {
			result(ok)
		}
	}
	m.send(l, PDU{Op: OpUnsniffReq})
}

// RequestHold negotiates a one-shot hold period.
func (m *Manager) RequestHold(l *baseband.Link, holdSlots int, result func(bool)) {
	m.pendingAccept[l] = func(ok bool) {
		if ok {
			l.EnterHold(holdSlots)
			m.notifyMode(l, baseband.ModeHold)
		}
		if result != nil {
			result(ok)
		}
	}
	m.send(l, PDU{Op: OpHoldReq, Params: putU16(uint16(holdSlots))})
}

// RequestPark negotiates park mode with the given beacon period.
func (m *Manager) RequestPark(l *baseband.Link, beaconSlots int, result func(bool)) {
	m.pendingAccept[l] = func(ok bool) {
		if ok {
			l.EnterPark(beaconSlots)
			m.notifyMode(l, baseband.ModePark)
		}
		if result != nil {
			result(ok)
		}
	}
	m.send(l, PDU{Op: OpParkReq, Params: putU16(uint16(beaconSlots))})
}

// SendSlotOffset announces this device's slot offset on l: the phase
// difference, in microseconds, between the peer piconet's slot grid and
// another slot grid this device is synchronised to. In the spec
// LMP_slot_offset precedes a master/slave role switch; here it is the
// timing half of the scatternet bridge handshake — the bridge tells
// each master where its *other* piconet's slots sit before pinning its
// presence windows, so the announced sniff anchors are interpretable.
// The PDU carries the offset and the sender's BD_ADDR.
func (m *Manager) SendSlotOffset(l *baseband.Link, offsetUS uint16) {
	a := m.dev.Addr()
	params := append(putU16(offsetUS),
		byte(a.LAP), byte(a.LAP>>8), byte(a.LAP>>16), a.UAP, byte(a.NAP), byte(a.NAP>>8))
	m.send(l, PDU{Op: OpSlotOffset, Params: params})
}

// PeerSlotOffset returns the last slot offset the peer announced on l
// and whether one was ever received.
func (m *Manager) PeerSlotOffset(l *baseband.Link) (uint16, bool) {
	v, ok := m.slotOffsets[l]
	return v, ok
}

// RequestPresence is the bridge timing handshake, run from the slave
// side of l: LMP_slot_offset announces where the bridge's other slot
// grid sits, then a sniff negotiation pins this link to the presence
// window described by (tsniff, attempt, offset) — the window in which
// the bridge's radio is parked on THIS piconet's hop sequence. The
// master stops addressing the bridge outside the window (the sniff
// scheduler's contract), which is exactly the absence guarantee a
// device timesharing its radio between piconets needs. A full
// master/slave role switch is not modelled; bridges in this model are
// slaves in every piconet they join, which the spec permits.
func (m *Manager) RequestPresence(l *baseband.Link, tsniff, attempt, offset int, slotOffsetUS uint16, result func(bool)) {
	m.SendSlotOffset(l, slotOffsetUS)
	m.RequestSniff(l, tsniff, attempt, offset, result)
}

// RequestSCO negotiates a voice channel over the ACL link (master
// side): the slave accepts and installs its end, then the master
// reserves the slots.
func (m *Manager) RequestSCO(l *baseband.Link, ty packet.Type, tsco, dsco int, result func(*baseband.SCOLink)) {
	params := append([]byte{uint8(ty)}, append(putU16(uint16(tsco)), putU16(uint16(dsco))...)...)
	m.pendingAccept[l] = func(ok bool) {
		var sco *baseband.SCOLink
		if ok {
			sco = m.dev.AddSCO(l, ty, tsco, dsco)
		}
		if result != nil {
			result(sco)
		}
	}
	m.send(l, PDU{Op: OpSCOLinkReq, Params: params})
}

// afhInstantDelaySlots is how far in the future the AFH switch instant
// lies: long enough for the acceptance to ride back on the old hop set.
const afhInstantDelaySlots = 256

// SetAFH pushes an adaptive channel map to the slave (master side); nil
// restores the full hop set. Both ends switch at a shared future
// instant (spec AFH_instant), so no packet straddles two hop sets.
func (m *Manager) SetAFH(l *baseband.Link, cm *hop.ChannelMap, result func(bool)) {
	var mask []byte
	if cm != nil {
		mask = cm.Bitmask()
	} else {
		mask = hop.AllChannels().Bitmask()
	}
	instant := m.dev.Clock.CLK(m.dev.Now()) + afhInstantDelaySlots*2
	params := append(mask, byte(instant), byte(instant>>8), byte(instant>>16), byte(instant>>24))
	m.pendingAccept[l] = func(ok bool) {
		if ok {
			m.deferAfter(afhInstantDelaySlots, func() { m.dev.SetAFH(cm) })
		}
		if result != nil {
			result(ok)
		}
	}
	m.send(l, PDU{Op: OpSetAFH, Params: params})
}

// Detach tears the link down from either end.
func (m *Manager) Detach(l *baseband.Link) {
	m.send(l, PDU{Op: OpDetach})
}

// sendSetupComplete transmits LMP_setup_complete at most once per link.
func (m *Manager) sendSetupComplete(l *baseband.Link) {
	if m.setupSent[l] {
		return
	}
	m.setupSent[l] = true
	m.send(l, PDU{Op: OpSetupComplete})
}

func (m *Manager) notifyMode(l *baseband.Link, mode baseband.Mode) {
	if m.OnModeChange != nil {
		m.OnModeChange(l, mode)
	}
}

// receive dispatches incoming PDUs.
func (m *Manager) receive(l *baseband.Link, payload []byte) {
	pdu, err := Decode(payload)
	if err != nil {
		return
	}
	switch pdu.Op {
	case OpHostConnReq:
		// Responder: accept, then announce our setup completion.
		m.send(l, PDU{Op: OpAccepted, Params: []byte{uint8(OpHostConnReq)}})
		m.sendSetupComplete(l)
	case OpSetupComplete:
		// Both sides must send setup_complete; completion fires when the
		// peer's arrives.
		m.sendSetupComplete(l)
		if !m.setupDone[l] {
			m.setupDone[l] = true
			if m.OnSetupComplete != nil {
				m.OnSetupComplete(l)
			}
		}
	case OpAccepted:
		if len(pdu.Params) >= 1 && Opcode(pdu.Params[0]) == OpHostConnReq {
			// Initiator: the peer accepted; announce our completion.
			m.sendSetupComplete(l)
			return
		}
		if cb, ok := m.pendingAccept[l]; ok {
			delete(m.pendingAccept, l)
			cb(true)
		}
	case OpNotAccepted:
		if cb, ok := m.pendingAccept[l]; ok {
			delete(m.pendingAccept, l)
			cb(false)
		}
	case OpSniffReq:
		if len(pdu.Params) < 6 {
			m.send(l, PDU{Op: OpNotAccepted, Params: []byte{uint8(OpSniffReq)}})
			return
		}
		t, attempt, off := int(getU16(pdu.Params[0:2])), int(getU16(pdu.Params[2:4])), int(getU16(pdu.Params[4:6]))
		m.send(l, PDU{Op: OpAccepted, Params: []byte{uint8(OpSniffReq)}})
		l.EnterSniff(t, attempt, off)
		m.notifyMode(l, baseband.ModeSniff)
	case OpUnsniffReq:
		m.send(l, PDU{Op: OpAccepted, Params: []byte{uint8(OpUnsniffReq)}})
		l.ExitSniff()
		m.notifyMode(l, baseband.ModeActive)
	case OpHoldReq:
		if len(pdu.Params) < 2 {
			m.send(l, PDU{Op: OpNotAccepted, Params: []byte{uint8(OpHoldReq)}})
			return
		}
		slots := int(getU16(pdu.Params[0:2]))
		m.send(l, PDU{Op: OpAccepted, Params: []byte{uint8(OpHoldReq)}})
		// Defer the mode change so the acceptance is polled out before
		// the responder's RF goes dark (the spec's hold instant).
		m.deferAfter(modeChangeDeferSlots, func() {
			l.EnterHold(slots)
			m.notifyMode(l, baseband.ModeHold)
		})
	case OpParkReq:
		if len(pdu.Params) < 2 {
			m.send(l, PDU{Op: OpNotAccepted, Params: []byte{uint8(OpParkReq)}})
			return
		}
		beacon := int(getU16(pdu.Params[0:2]))
		m.send(l, PDU{Op: OpAccepted, Params: []byte{uint8(OpParkReq)}})
		m.deferAfter(modeChangeDeferSlots, func() {
			l.EnterPark(beacon)
			m.notifyMode(l, baseband.ModePark)
		})
	case OpSlotOffset:
		if len(pdu.Params) < 8 {
			m.send(l, PDU{Op: OpNotAccepted, Params: []byte{uint8(OpSlotOffset)}})
			return
		}
		off := getU16(pdu.Params[0:2])
		peer := baseband.BDAddr{
			LAP: uint32(pdu.Params[2]) | uint32(pdu.Params[3])<<8 | uint32(pdu.Params[4])<<16,
			UAP: pdu.Params[5],
			NAP: uint16(pdu.Params[6]) | uint16(pdu.Params[7])<<8,
		}
		m.slotOffsets[l] = off
		if m.OnSlotOffset != nil {
			m.OnSlotOffset(l, off, peer)
		}
	case OpSetAFH:
		cm, err := hop.FromBitmask(pdu.Params)
		if err != nil || len(pdu.Params) < 14 {
			m.send(l, PDU{Op: OpNotAccepted, Params: []byte{uint8(OpSetAFH)}})
			return
		}
		if cm.N() == hop.NumChannels {
			cm = nil // full set: AFH effectively off
		}
		instant := uint32(pdu.Params[10]) | uint32(pdu.Params[11])<<8 |
			uint32(pdu.Params[12])<<16 | uint32(pdu.Params[13])<<24
		// Switch at the shared instant; the acceptance travels on the old
		// hop set. Piconet clocks agree, so both ends compute the same
		// residual delay.
		wait := (instant - m.dev.Clock.CLK(m.dev.Now())) & btclockMask
		m.deferAfter(uint64(wait/2), func() { m.dev.SetAFH(cm) })
		m.send(l, PDU{Op: OpAccepted, Params: []byte{uint8(OpSetAFH)}})
	case OpSCOLinkReq:
		if len(pdu.Params) < 5 {
			m.send(l, PDU{Op: OpNotAccepted, Params: []byte{uint8(OpSCOLinkReq)}})
			return
		}
		ty := packet.Type(pdu.Params[0])
		tsco, dsco := int(getU16(pdu.Params[1:3])), int(getU16(pdu.Params[3:5]))
		if !ty.IsSCO() {
			m.send(l, PDU{Op: OpNotAccepted, Params: []byte{uint8(OpSCOLinkReq)}})
			return
		}
		sco := m.dev.AcceptSCO(ty, tsco, dsco)
		m.send(l, PDU{Op: OpAccepted, Params: []byte{uint8(OpSCOLinkReq)}})
		if m.OnSCOEstablished != nil {
			m.OnSCOEstablished(sco)
		}
	case OpDetach:
		if m.OnDetach != nil {
			m.OnDetach(l)
		}
	case OpVersionReq:
		m.send(l, PDU{Op: OpVersionRes, Params: []byte{2, 0, 0}}) // BT 1.2
	case OpMaxSlotReq:
		m.send(l, PDU{Op: OpMaxSlot, Params: []byte{5}})
	}
}
