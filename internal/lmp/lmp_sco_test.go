package lmp

import (
	"testing"

	"repro/internal/baseband"
	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/sim"
)

func TestSCONegotiationOverTheAir(t *testing.T) {
	k, mm, sm, ml, _ := pair(t)
	var slaveSCO *baseband.SCOLink
	sm.OnSCOEstablished = func(sco *baseband.SCOLink) {
		slaveSCO = sco
		sco.Source = func() []byte { return make([]byte, 30) }
	}
	var masterSCO *baseband.SCOLink
	mm.RequestSCO(ml, packet.TypeHV3, 6, 0, func(sco *baseband.SCOLink) { masterSCO = sco })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if masterSCO == nil || slaveSCO == nil {
		t.Fatalf("SCO not negotiated: master=%v slave=%v", masterSCO != nil, slaveSCO != nil)
	}
	if slaveSCO.Type != packet.TypeHV3 || slaveSCO.TscoSlots != 6 {
		t.Fatalf("slave SCO params wrong: %v/%d", slaveSCO.Type, slaveSCO.TscoSlots)
	}
	// Voice must actually flow after negotiation.
	k.RunUntil(k.Now() + sim.Time(sim.Slots(300)))
	if masterSCO.RxFrames == 0 || slaveSCO.RxFrames == 0 {
		t.Fatalf("no voice after negotiation: m.rx=%d s.rx=%d",
			masterSCO.RxFrames, slaveSCO.RxFrames)
	}
}

func TestSCONegotiationRejectsBadType(t *testing.T) {
	k, mm, _, ml, sl := pair(t)
	var result *baseband.SCOLink = &baseband.SCOLink{} // sentinel
	called := false
	// Raw PDU with a non-SCO type code must be not-accepted.
	mm.pendingAccept[ml] = func(ok bool) {
		called = true
		if ok {
			t.Error("bad SCO type accepted")
		}
	}
	params := append([]byte{uint8(packet.TypeDM1)}, putU16(6)...)
	params = append(params, putU16(0)...)
	mm.send(ml, PDU{Op: OpSCOLinkReq, Params: params})
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if !called {
		t.Fatal("no response to bad SCO request")
	}
	_ = result
	if len(sl.Mode().String()) == 0 {
		t.Fatal("sanity")
	}
}

func TestAFHNegotiation(t *testing.T) {
	k, mm, sm, ml, _ := pair(t)
	cm := hop.ExcludeRange(30, 52)
	var accepted bool
	mm.SetAFH(ml, cm, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(600))) // past the AFH instant
	if !accepted {
		t.Fatal("AFH map not accepted")
	}
	mMap, sMap := mm.Dev().AFHMap(), sm.Dev().AFHMap()
	if mMap == nil || sMap == nil {
		t.Fatal("AFH map not installed on both ends")
	}
	if mMap.N() != cm.N() || sMap.N() != cm.N() {
		t.Fatalf("map sizes: %d/%d want %d", mMap.N(), sMap.N(), cm.N())
	}
	// The link must keep working on the reduced hop set.
	got := 0
	sm.Dev().OnData = func(l *baseband.Link, p []byte, llid uint8) { got += len(p) }
	ml.Send([]byte{1, 2, 3, 4}, packet.LLIDL2CAPStart)
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if got != 4 {
		t.Fatalf("data broken after AFH switch: %d bytes", got)
	}
}

func TestAFHRevertToFullSet(t *testing.T) {
	k, mm, sm, ml, _ := pair(t)
	mm.SetAFH(ml, hop.ExcludeRange(0, 39), nil)
	k.RunUntil(k.Now() + sim.Time(sim.Slots(600)))
	if sm.Dev().AFHMap() == nil {
		t.Fatal("map not installed")
	}
	// nil map = full set over the air (all-channels bitmask).
	mm.SetAFH(ml, nil, nil)
	k.RunUntil(k.Now() + sim.Time(sim.Slots(600)))
	if sm.Dev().AFHMap() != nil {
		t.Fatal("full-set bitmask must clear the slave's map")
	}
	if mm.Dev().AFHMap() != nil {
		t.Fatal("full-set bitmask must clear the master's map")
	}
}
