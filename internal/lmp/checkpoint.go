package lmp

import (
	"fmt"

	"repro/internal/baseband"
)

// Checkpoint/restore for the LMP layer. A manager's durable state is
// tiny: which links finished setup, which sent setup_complete, and the
// last slot offset each peer announced. Everything else is
// transactional — a pending-accept callback or a scheduled mode-change
// closure — and the quiescent-edge snapshot contract excludes it
// (Quiescent must hold before capture), so it is never serialized.

// LinkSetup is the captured LMP state of one link, keyed by peer.
type LinkSetup struct {
	Peer          baseband.BDAddr
	SetupDone     bool
	SetupSent     bool
	SlotOffset    uint16
	HasSlotOffset bool
}

// Quiescent reports whether the manager has no transaction in progress:
// no request awaiting an accepted/not_accepted answer, and no deferred
// mode-change or AFH-switch closure scheduled.
func (m *Manager) Quiescent() bool {
	return len(m.pendingAccept) == 0 && m.deferred == 0
}

// Checkpoint captures the per-link setup state for links, in the
// caller's (deterministic) order. It fails if a transaction is in
// progress.
func (m *Manager) Checkpoint(links []*baseband.Link) ([]LinkSetup, error) {
	if !m.Quiescent() {
		return nil, fmt.Errorf("lmp: %s has a transaction in progress", m.dev.Name())
	}
	out := make([]LinkSetup, 0, len(links))
	for _, l := range links {
		s := LinkSetup{Peer: l.Peer, SetupDone: m.setupDone[l], SetupSent: m.setupSent[l]}
		s.SlotOffset, s.HasSlotOffset = m.slotOffsets[l]
		out = append(out, s)
	}
	return out, nil
}

// RestoreSetup re-keys captured setup state onto restored links,
// matching by peer address.
func (m *Manager) RestoreSetup(links []*baseband.Link, setups []LinkSetup) error {
	byPeer := make(map[baseband.BDAddr]*baseband.Link, len(links))
	for _, l := range links {
		byPeer[l.Peer] = l
	}
	for _, s := range setups {
		l, ok := byPeer[s.Peer]
		if !ok {
			return fmt.Errorf("lmp: %s setup state references unknown link %v", m.dev.Name(), s.Peer)
		}
		if s.SetupDone {
			m.setupDone[l] = true
		}
		if s.SetupSent {
			m.setupSent[l] = true
		}
		if s.HasSlotOffset {
			m.slotOffsets[l] = s.SlotOffset
		}
	}
	return nil
}
