package lmp_test

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/lmp"
	"repro/internal/sim"
)

// examplePair wires a connected master/slave pair with LMP managers on
// both ends — the minimal world every LMP negotiation example needs.
func examplePair() (*sim.Kernel, *lmp.Manager, *baseband.Link) {
	k := sim.NewKernel()
	ch := channel.New(k, sim.NewRand(42), channel.Config{})
	master := baseband.New(k, ch, "master",
		baseband.Config{Addr: baseband.BDAddr{LAP: 0x101010, UAP: 1}})
	slave := baseband.New(k, ch, "slave",
		baseband.Config{Addr: baseband.BDAddr{LAP: 0x202020, UAP: 2}, ClockPhase: 4242})
	mm := lmp.Attach(master)
	lmp.Attach(slave) // the responder side of every negotiation
	var link *baseband.Link
	master.OnConnected = func(l *baseband.Link) { link = l }
	slave.StartPageScan()
	est := master.EstimateOf(baseband.InquiryResult{CLKN: slave.Clock.CLKN(0), At: 0}, 0)
	master.StartPage(slave.Addr(), est, 2048, nil)
	k.RunUntil(sim.Time(sim.Slots(600)))
	return k, mm, link
}

// RequestSniff negotiates sniff mode over the air: the request rides an
// LLID-3 payload to the slave, the acceptance rides back, and both ends
// enter the mode — after which the master only addresses the slave
// inside the negotiated anchor windows (paper Fig 9).
func ExampleManager_RequestSniff() {
	k, mm, link := examplePair()

	accepted := false
	mm.RequestSniff(link, 100, 2, 0, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))

	fmt.Println("accepted:", accepted)
	fmt.Println("master link mode:", link.Mode())
	// Output:
	// accepted: true
	// master link mode: SNIFF
}

// RequestHold negotiates a one-shot hold period: the slave's RF goes
// completely dark for the agreed slots, then it resynchronises and the
// link returns to active mode by itself (paper Fig 12 measures exactly
// this cycle).
func ExampleManager_RequestHold() {
	k, mm, link := examplePair()

	accepted := false
	mm.RequestHold(link, 300, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(200)))
	fmt.Println("accepted:", accepted)
	fmt.Println("during hold:", link.Mode())

	// The hold expires on its own; both ends resynchronise to active.
	k.RunUntil(k.Now() + sim.Time(sim.Slots(900)))
	fmt.Println("after expiry:", link.Mode())
	// Output:
	// accepted: true
	// during hold: HOLD
	// after expiry: ACTIVE
}
