package lmp

import (
	"testing"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/sim"
)

func TestPDUEncodeDecode(t *testing.T) {
	p := PDU{Op: OpSniffReq, Params: []byte{1, 2, 3}}
	b := p.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpSniffReq || len(got.Params) != 3 || got.Params[2] != 3 {
		t.Fatalf("round trip wrong: %+v", got)
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty PDU must error")
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpSniffReq.String() != "LMP_sniff_req" || OpDetach.String() != "LMP_detach" {
		t.Fatal("opcode strings wrong")
	}
	if Opcode(200).String() != "LMP_op(200)" {
		t.Fatal("unknown opcode string wrong")
	}
}

func TestU16Helpers(t *testing.T) {
	if getU16(putU16(0xBEEF)) != 0xBEEF {
		t.Fatal("u16 round trip failed")
	}
}

// pair builds a connected master/slave with LMP managers attached.
func pair(t *testing.T) (*sim.Kernel, *Manager, *Manager, *baseband.Link, *baseband.Link) {
	t.Helper()
	k := sim.NewKernel()
	ch := channel.New(k, sim.NewRand(42), channel.Config{})
	m := baseband.New(k, ch, "master", baseband.Config{Addr: baseband.BDAddr{LAP: 0x101010, UAP: 1}})
	s := baseband.New(k, ch, "slave", baseband.Config{Addr: baseband.BDAddr{LAP: 0x202020, UAP: 2}, ClockPhase: 4242})
	mm, sm := Attach(m), Attach(s)
	var ml, sl *baseband.Link
	m.OnConnected = func(l *baseband.Link) { ml = l }
	s.OnConnected = func(l *baseband.Link) { sl = l }
	s.StartPageScan()
	est := m.EstimateOf(baseband.InquiryResult{CLKN: s.Clock.CLKN(0), At: 0}, 0)
	m.StartPage(s.Addr(), est, 2048, nil)
	k.RunUntil(sim.Time(sim.Slots(600)))
	if ml == nil || sl == nil {
		t.Fatal("pair did not connect")
	}
	return k, mm, sm, ml, sl
}

func TestSetupHandshake(t *testing.T) {
	k, mm, sm, ml, sl := pair(t)
	var masterDone, slaveDone bool
	mm.OnSetupComplete = func(l *baseband.Link) { masterDone = true }
	sm.OnSetupComplete = func(l *baseband.Link) { slaveDone = true }
	mm.StartSetup(ml)
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if !masterDone || !slaveDone {
		t.Fatalf("setup incomplete: master=%v slave=%v", masterDone, slaveDone)
	}
	if !mm.SetupComplete(ml) || !sm.SetupComplete(sl) {
		t.Fatal("SetupComplete accessors disagree")
	}
}

func TestSniffNegotiation(t *testing.T) {
	k, mm, sm, ml, sl := pair(t)
	var accepted bool
	var slaveMode baseband.Mode = -1
	sm.OnModeChange = func(l *baseband.Link, m baseband.Mode) { slaveMode = m }
	mm.RequestSniff(ml, 100, 2, 0, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(800)))
	if !accepted {
		t.Fatal("sniff not accepted")
	}
	if ml.Mode() != baseband.ModeSniff || sl.Mode() != baseband.ModeSniff {
		t.Fatalf("modes: master-link %v slave-link %v", ml.Mode(), sl.Mode())
	}
	if slaveMode != baseband.ModeSniff {
		t.Fatal("slave mode-change callback missing")
	}
	// Unsniff over the air (works because the sniff anchors still give
	// the slave receive windows).
	accepted = false
	mm.RequestUnsniff(ml, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(1200)))
	if !accepted || ml.Mode() != baseband.ModeActive || sl.Mode() != baseband.ModeActive {
		t.Fatalf("unsniff failed: accepted=%v modes %v/%v", accepted, ml.Mode(), sl.Mode())
	}
}

func TestHoldNegotiation(t *testing.T) {
	k, mm, _, ml, sl := pair(t)
	var accepted bool
	mm.RequestHold(ml, 300, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(200)))
	if !accepted {
		t.Fatal("hold not accepted")
	}
	if ml.Mode() != baseband.ModeHold || sl.Mode() != baseband.ModeHold {
		t.Fatalf("modes after hold: %v/%v", ml.Mode(), sl.Mode())
	}
	// After the hold expires both ends return to active via resync.
	k.RunUntil(k.Now() + sim.Time(sim.Slots(900)))
	if sl.Mode() != baseband.ModeActive {
		t.Fatalf("slave mode after hold expiry: %v", sl.Mode())
	}
}

func TestParkNegotiation(t *testing.T) {
	k, mm, _, ml, sl := pair(t)
	var accepted bool
	mm.RequestPark(ml, 64, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if !accepted {
		t.Fatal("park not accepted")
	}
	if ml.Mode() != baseband.ModePark || sl.Mode() != baseband.ModePark {
		t.Fatalf("modes after park: %v/%v", ml.Mode(), sl.Mode())
	}
}

// pairWith builds a connected master/slave like pair, but lets the test
// shape both device configs first (short supervision timeouts etc).
func pairWith(t *testing.T, shape func(master, slave *baseband.Config)) (*sim.Kernel, *Manager, *Manager, *baseband.Link, *baseband.Link) {
	t.Helper()
	k := sim.NewKernel()
	ch := channel.New(k, sim.NewRand(42), channel.Config{})
	mc := baseband.Config{Addr: baseband.BDAddr{LAP: 0x101010, UAP: 1}}
	sc := baseband.Config{Addr: baseband.BDAddr{LAP: 0x202020, UAP: 2}, ClockPhase: 4242}
	if shape != nil {
		shape(&mc, &sc)
	}
	m := baseband.New(k, ch, "master", mc)
	s := baseband.New(k, ch, "slave", sc)
	mm, sm := Attach(m), Attach(s)
	var ml, sl *baseband.Link
	m.OnConnected = func(l *baseband.Link) { ml = l }
	s.OnConnected = func(l *baseband.Link) { sl = l }
	s.StartPageScan()
	est := m.EstimateOf(baseband.InquiryResult{CLKN: s.Clock.CLKN(0), At: 0}, 0)
	m.StartPage(s.Addr(), est, 2048, nil)
	k.RunUntil(sim.Time(sim.Slots(600)))
	if ml == nil || sl == nil {
		t.Fatal("pair did not connect")
	}
	return k, mm, sm, ml, sl
}

// TestParkModeEndToEnd drives park over the air the way Figs 10-12
// drive sniff and hold: LMP negotiation in, beacon-based survival while
// parked, direct unpark out, data flowing again afterwards. The
// supervision timeout is deliberately shorter than the parked horizon,
// so the test fails if the master's beacons ever stop keeping the
// parked slave synchronised.
func TestParkModeEndToEnd(t *testing.T) {
	k, mm, sm, ml, sl := pairWith(t, func(mc, sc *baseband.Config) {
		mc.SupervisionTimeoutSlots = 2000
		sc.SupervisionTimeoutSlots = 2000
	})
	master, sdevice := mm.Dev(), sm.Dev()

	// Active-mode RX duty as the baseline the park saving is judged by.
	sdevice.RxMeter.Reset()
	k.RunUntil(k.Now() + sim.Time(sim.Slots(4000)))
	activeRx := sdevice.RxMeter.Activity()

	var accepted bool
	var dropped string
	sdevice.OnDisconnected = func(_ *baseband.Link, reason string) { dropped = reason }
	master.OnDisconnected = func(_ *baseband.Link, reason string) { dropped = reason }
	mm.RequestPark(ml, 64, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if !accepted || ml.Mode() != baseband.ModePark || sl.Mode() != baseband.ModePark {
		t.Fatalf("park not negotiated: accepted=%v modes %v/%v", accepted, ml.Mode(), sl.Mode())
	}

	// Parked horizon of 6000 slots >> the 2000-slot supervision timeout:
	// only the broadcast beacons can keep both ends alive.
	sdevice.RxMeter.Reset()
	beforeRx := sdevice.Counters.RxPackets
	k.RunUntil(k.Now() + sim.Time(sim.Slots(6000)))
	parkedRx := sdevice.RxMeter.Activity()
	if dropped != "" {
		t.Fatalf("link died while parked: %s", dropped)
	}
	if got := sdevice.Counters.RxPackets - beforeRx; got < 50 {
		t.Fatalf("parked slave heard only %d beacons over 6000 slots (beacon every 64)", got)
	}
	if parkedRx >= activeRx/4 {
		t.Fatalf("park saves no RF: parked %.4f%% vs active %.4f%%", parkedRx*100, activeRx*100)
	}

	// Unpark both ends (the spec unparks via the beacon broadcast
	// channel, which this model does not carry LMP over) and confirm the
	// link is immediately usable for data again.
	ml.Unpark()
	sl.Unpark()
	var got []byte
	sdevice.OnData = func(_ *baseband.Link, payload []byte, _ uint8) { got = append(got, payload...) }
	ml.Send([]byte("back to active"), 2)
	k.RunUntil(k.Now() + sim.Time(sim.Slots(200)))
	if string(got) != "back to active" {
		t.Fatalf("no data after unpark: %q", got)
	}
}

func TestSlotOffsetHandshake(t *testing.T) {
	k, mm, sm, ml, sl := pair(t)
	var gotUS uint16
	var gotPeer baseband.BDAddr
	mm.OnSlotOffset = func(_ *baseband.Link, us uint16, peer baseband.BDAddr) { gotUS, gotPeer = us, peer }
	sm.SendSlotOffset(sl, 312)
	k.RunUntil(k.Now() + sim.Time(sim.Slots(200)))
	if gotUS != 312 {
		t.Fatalf("slot offset = %d, want 312", gotUS)
	}
	if gotPeer != sm.Dev().Addr() {
		t.Fatalf("peer addr = %v, want %v", gotPeer, sm.Dev().Addr())
	}
	if us, ok := mm.PeerSlotOffset(ml); !ok || us != 312 {
		t.Fatalf("PeerSlotOffset = %d,%v", us, ok)
	}
	if _, ok := sm.PeerSlotOffset(sl); ok {
		t.Fatal("slave never received a slot offset")
	}
}

// TestPresenceHandshakePinsWindow runs the full bridge handshake from
// the slave side: slot offset then sniff, the master honouring the
// announced window afterwards.
func TestPresenceHandshakePinsWindow(t *testing.T) {
	k, mm, sm, ml, sl := pair(t)
	var accepted bool
	var offUS uint16
	mm.OnSlotOffset = func(_ *baseband.Link, us uint16, _ baseband.BDAddr) { offUS = us }
	sm.RequestPresence(sl, 128, 8, 3, 625, func(ok bool) { accepted = ok })
	k.RunUntil(k.Now() + sim.Time(sim.Slots(800)))
	if !accepted {
		t.Fatal("presence request not accepted")
	}
	if offUS != 625 {
		t.Fatalf("slot offset not announced first: %d", offUS)
	}
	if ml.Mode() != baseband.ModeSniff || sl.Mode() != baseband.ModeSniff {
		t.Fatalf("presence window not pinned: %v/%v", ml.Mode(), sl.Mode())
	}
}

func TestDetachNotifies(t *testing.T) {
	k, mm, sm, ml, _ := pair(t)
	var detached bool
	sm.OnDetach = func(l *baseband.Link) { detached = true }
	mm.Detach(ml)
	k.RunUntil(k.Now() + sim.Time(sim.Slots(200)))
	if !detached {
		t.Fatal("detach not delivered")
	}
}

func TestVersionAndMaxSlotRequests(t *testing.T) {
	k, mm, _, ml, sl := pair(t)
	_ = sl
	// Fire raw PDUs and make sure responses come back (observed via the
	// master's own receive path not crashing and link traffic counters).
	mm.send(ml, PDU{Op: OpVersionReq})
	mm.send(ml, PDU{Op: OpMaxSlotReq})
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if ml.RxData < 2 {
		t.Fatalf("expected version+maxslot responses, got %d LMP receptions", ml.RxData)
	}
}

func TestBadPDUsNotAccepted(t *testing.T) {
	k, mm, _, ml, sl := pair(t)
	var result *bool
	// Malformed sniff req (too-short params) sent raw: peer must answer
	// not_accepted, which clears a pending callback with false.
	mm.pendingAccept[ml] = func(ok bool) { result = &ok }
	mm.send(ml, PDU{Op: OpSniffReq, Params: []byte{1}})
	k.RunUntil(k.Now() + sim.Time(sim.Slots(400)))
	if result == nil || *result {
		t.Fatalf("malformed request must be rejected (result=%v)", result)
	}
	if sl.Mode() != baseband.ModeActive {
		t.Fatal("slave must stay active")
	}
}
