package hop

import (
	"testing"
	"testing/quick"
)

func TestChannelMapBasics(t *testing.T) {
	m := ExcludeRange(30, 52)
	if m.N() != NumChannels-23 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Used(35) || !m.Used(10) || !m.Used(60) {
		t.Fatal("Used wrong")
	}
	if AllChannels().N() != NumChannels {
		t.Fatal("AllChannels wrong")
	}
}

func TestRemapAvoidsExcluded(t *testing.T) {
	m := ExcludeRange(30, 52)
	for f := 0; f < NumChannels; f++ {
		out := m.Remap(f)
		if !m.Used(out) {
			t.Fatalf("Remap(%d) = %d lands on an excluded channel", f, out)
		}
		if m.Used(f) && out != f {
			t.Fatalf("used channel %d must pass through, got %d", f, out)
		}
	}
}

func TestBasicAFHDistribution(t *testing.T) {
	s := NewSelector(Addr28(0x314159, 0x27))
	m := ExcludeRange(0, 39) // keep upper half only (39 channels)
	counts := map[int]int{}
	const hops = 20000
	for i := 0; i < hops; i++ {
		f := s.BasicAFH(uint32(i*2), m)
		if !m.Used(f) {
			t.Fatalf("AFH hop %d landed on excluded channel %d", i, f)
		}
		counts[f]++
	}
	// Every used channel should see traffic, none grossly over-used.
	for ch := 40; ch < NumChannels; ch++ {
		n := counts[ch]
		if n == 0 {
			t.Fatalf("channel %d never used", ch)
		}
		if n > hops/m.N()*4 {
			t.Fatalf("channel %d used %d times, badly skewed", ch, n)
		}
	}
	// Nil map = plain basic hopping.
	if s.BasicAFH(1234, nil) != s.Basic(1234) {
		t.Fatal("nil map must be transparent")
	}
}

func TestBitmaskRoundTrip(t *testing.T) {
	f := func(loRaw, spanRaw uint8) bool {
		lo := int(loRaw) % 40
		hi := lo + int(spanRaw)%20
		m := ExcludeRange(lo, hi)
		got, err := FromBitmask(m.Bitmask())
		if err != nil {
			return false
		}
		if got.N() != m.N() {
			return false
		}
		for ch := 0; ch < NumChannels; ch++ {
			if got.Used(ch) != m.Used(ch) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmaskErrors(t *testing.T) {
	if _, err := FromBitmask(make([]byte, 5)); err == nil {
		t.Fatal("short bitmask accepted")
	}
	if _, err := FromBitmask(make([]byte, 10)); err == nil {
		t.Fatal("empty channel set accepted")
	}
}

func TestChannelMapValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"too few":      func() { NewChannelMap([]int{1, 2, 3}) },
		"out of range": func() { NewChannelMap([]int{0, 1, 2, 79}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
