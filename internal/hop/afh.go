package hop

import "fmt"

// MinAFHChannels is the smallest legal adaptive channel set (spec 1.2
// AFH Nmin).
const MinAFHChannels = 20

// ChannelMap is an adaptive-frequency-hopping channel set: the v1.2
// mechanism for coexisting with static interferers (802.11 networks
// parked on part of the ISM band). Hops selected by the basic kernel
// that land on an unused channel are remapped into the used set.
type ChannelMap struct {
	used [NumChannels]bool
	list []int // ascending used channels
}

// NewChannelMap builds a map from the used channel list.
func NewChannelMap(used []int) *ChannelMap {
	m := &ChannelMap{}
	for _, ch := range used {
		if ch < 0 || ch >= NumChannels {
			panic(fmt.Sprintf("hop: channel %d out of range", ch))
		}
		if !m.used[ch] {
			m.used[ch] = true
		}
	}
	for ch := 0; ch < NumChannels; ch++ {
		if m.used[ch] {
			m.list = append(m.list, ch)
		}
	}
	if len(m.list) < MinAFHChannels {
		panic(fmt.Sprintf("hop: AFH needs >= %d channels, got %d", MinAFHChannels, len(m.list)))
	}
	return m
}

// AllChannels returns the trivial map (AFH disabled semantics).
func AllChannels() *ChannelMap {
	all := make([]int, NumChannels)
	for i := range all {
		all[i] = i
	}
	return NewChannelMap(all)
}

// ExcludeRange returns a map avoiding channels [lo, hi].
func ExcludeRange(lo, hi int) *ChannelMap {
	var used []int
	for ch := 0; ch < NumChannels; ch++ {
		if ch < lo || ch > hi {
			used = append(used, ch)
		}
	}
	return NewChannelMap(used)
}

// N returns the number of used channels.
func (m *ChannelMap) N() int { return len(m.list) }

// Used reports whether ch is in the adaptive set.
func (m *ChannelMap) Used(ch int) bool { return m.used[ch] }

// Remap applies the AFH remapping function: used channels pass through,
// unused ones map onto the used set pseudo-uniformly (spec §2.6.4.6).
func (m *ChannelMap) Remap(f int) int {
	if m.used[f] {
		return f
	}
	return m.list[f%len(m.list)]
}

// Bitmask serialises the map into the 10-byte LMP wire format.
func (m *ChannelMap) Bitmask() []byte {
	out := make([]byte, 10)
	for _, ch := range m.list {
		out[ch/8] |= 1 << (ch % 8)
	}
	return out
}

// FromBitmask parses the LMP wire format.
func FromBitmask(b []byte) (*ChannelMap, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("hop: AFH bitmask needs 10 bytes, got %d", len(b))
	}
	var used []int
	for ch := 0; ch < NumChannels; ch++ {
		if b[ch/8]&(1<<(ch%8)) != 0 {
			used = append(used, ch)
		}
	}
	if len(used) < MinAFHChannels {
		return nil, fmt.Errorf("hop: AFH bitmask has %d channels, need >= %d", len(used), MinAFHChannels)
	}
	return NewChannelMap(used), nil
}

// BasicAFH returns the connection-state frequency under an adaptive
// channel map (nil map means the full hop set).
func (s *Selector) BasicAFH(clk uint32, m *ChannelMap) int {
	f := s.Basic(clk)
	if m == nil {
		return f
	}
	return m.Remap(f)
}
