package hop_test

import (
	"fmt"

	"repro/internal/hop"
)

// A ChannelMap is the v1.2 AFH hop set: hops that land on an excluded
// channel are remapped pseudo-uniformly onto the used set.
func ExampleNewChannelMap() {
	used := make([]int, 0, 40)
	for ch := 0; ch < 40; ch++ {
		used = append(used, ch)
	}
	m := hop.NewChannelMap(used)
	fmt.Println("channels in use:", m.N())
	fmt.Println("channel 5 used:", m.Used(5))
	fmt.Println("channel 60 used:", m.Used(60))
	fmt.Println("channel 60 remaps to:", m.Remap(60))
	// Output:
	// channels in use: 40
	// channel 5 used: true
	// channel 60 used: false
	// channel 60 remaps to: 20
}

// ExcludeRange builds the oracle map of the coexistence experiments: the
// full band minus a jammed range (here the classic 22 MHz 802.11
// footprint on channels 30-52).
func ExampleExcludeRange() {
	m := hop.ExcludeRange(30, 52)
	fmt.Println("channels in use:", m.N())
	fmt.Println("channel 40 used:", m.Used(40))
	fmt.Println("channel 40 remaps to:", m.Remap(40))
	// Output:
	// channels in use: 56
	// channel 40 used: false
	// channel 40 remaps to: 63
}
