// Package hop implements the Bluetooth 79-channel hop-selection kernel of
// spec 1.2 part B §2.6: the XOR/ADD/PERM5 selection box plus the per-mode
// input mappings for the basic (connection) sequence, the page and
// inquiry trains, the scan sequences and the response sequences. Every
// device in a piconet computes frequencies with this kernel, so master
// and slaves agree on the channel exactly when the standard says they do
// (same address input, same clock bits) — which is what makes the paper's
// piconet-creation experiments meaningful.
package hop

// NumChannels is the number of RF channels in the 2.4 GHz ISM band plan.
const NumChannels = 79

// NumScanFreqs is the length of a page/inquiry scan hopping sequence.
const NumScanFreqs = 32

// TrainSize is the number of distinct frequencies in one page/inquiry
// train (half the 32-frequency sequence).
const TrainSize = 16

// perm5 index wiring of the butterfly network (spec Figure 2.21): stage i
// conditionally exchanges bits index1[i] and index2[i] under control bit
// P[13-i].
var (
	perm5Index1 = [14]int{0, 2, 1, 3, 0, 1, 0, 3, 1, 0, 2, 1, 0, 1}
	perm5Index2 = [14]int{1, 3, 2, 4, 4, 3, 2, 4, 4, 3, 4, 3, 3, 2}
)

// perm5Butterfly applies the 14-stage butterfly permutation to the
// 5-bit input z under the packed 14-bit control word. The stages run
// directly on the packed bits — a conditional exchange of bits a and b
// is an XOR with (1<<a | 1<<b) when they differ.
func perm5Butterfly(z, ctl uint32) uint32 {
	for i := 13; i >= 0; i-- {
		if ctl>>uint(i)&1 == 1 {
			a, b := perm5Index1[13-i], perm5Index2[13-i]
			if (z>>uint(a))&1 != (z>>uint(b))&1 {
				z ^= 1<<uint(a) | 1<<uint(b)
			}
		}
	}
	return z & 0x1F
}

// perm5Tab caches the butterfly output for every (control, input) pair,
// indexed ctl<<5 | z. Connection-state hop selection runs the kernel on
// every single tune, so the 512 KiB table retires the 14-stage loop
// from the simulator's per-slot path.
var perm5Tab = func() []uint8 {
	t := make([]uint8, 1<<19)
	for ctl := uint32(0); ctl < 1<<14; ctl++ {
		for z := uint32(0); z < 32; z++ {
			t[ctl<<5|z] = uint8(perm5Butterfly(z, ctl))
		}
	}
	return t
}()

// perm5 looks up the butterfly permutation for input z under the 14-bit
// control word (pHigh 5 bits, pLow 9 bits).
func perm5(z uint32, pHigh, pLow uint32) uint32 {
	ctl := pLow&0x1FF | (pHigh&0x1F)<<9 // control bit i at position i
	return uint32(perm5Tab[ctl<<5|z&0x1F])
}

// bank maps the kernel's final adder output to an RF channel: even
// channels listed first, then odd (spec §2.6.3 register bank).
func bank(i uint32) int { return int((2 * i) % NumChannels) }

// Selector computes hop frequencies for one address. The address input
// is the 28-bit quantity the spec derives from the device address: LAP
// bits 0-23 plus the 4 least significant UAP bits at positions 24-27.
type Selector struct {
	a1 uint32 // address bits 27-23
	b  uint32 // address bits 22-19
	c1 uint32 // address bits 8,6,4,2,0
	d1 uint32 // address bits 18-10
	e  uint32 // address bits 13,11,9,7,5,3,1

	// trainCache memoises the page/inquiry/scan/response selections,
	// which — unlike the basic sequence — feed the kernel nothing but
	// the 5-bit phase X and Y1, so each of the 64 inputs is computed at
	// most once per selector. Entries store frequency+1 (0 = unfilled).
	trainCache [NumScanFreqs][2]int8
}

// NewSelector precomputes the kernel's address-derived inputs.
func NewSelector(addr28 uint32) *Selector {
	s := &Selector{
		a1: (addr28 >> 23) & 0x1F,
		b:  (addr28 >> 19) & 0x0F,
		d1: (addr28 >> 10) & 0x1FF,
	}
	for i := 0; i < 5; i++ {
		s.c1 |= ((addr28 >> (2 * i)) & 1) << i
	}
	for i := 0; i < 7; i++ {
		s.e |= ((addr28 >> (2*i + 1)) & 1) << i
	}
	return s
}

// Addr28 builds the kernel address input from a LAP and UAP.
func Addr28(lap uint32, uap uint8) uint32 {
	return lap&0xFFFFFF | uint32(uap&0x0F)<<24
}

// kernel runs the selection box.
func (s *Selector) kernel(x, y1, a, b, c, d, e, f uint32) int {
	z := ((x + a) % 32) ^ b
	perm := perm5(z, (y1*0x1F)^c, d)
	return bank((perm + e + f + 32*y1) % NumChannels)
}

// trainKernel runs the selection box for the clock-independent page /
// inquiry / scan / response mappings (address inputs un-XORed, F = 0)
// through the per-phase cache.
func (s *Selector) trainKernel(x, y1 uint32) int {
	slot := &s.trainCache[x%NumScanFreqs][y1&1]
	if *slot == 0 {
		*slot = int8(s.kernel(x%NumScanFreqs, y1&1, s.a1, s.b, s.c1, s.d1, s.e, 0) + 1)
	}
	return int(*slot) - 1
}

// Basic returns the connection-state (basic) hopping frequency for the
// 28-bit piconet clock CLK. Master transmit slots have CLK1 = 0.
func (s *Selector) Basic(clk uint32) int {
	x := (clk >> 2) & 0x1F
	y1 := (clk >> 1) & 1
	a := (s.a1 ^ (clk >> 21)) & 0x1F
	c := (s.c1 ^ (clk >> 16)) & 0x1F
	d := (s.d1 ^ (clk >> 7)) & 0x1FF
	f := (16 * ((clk >> 7) & 0x1FFFFF)) % NumChannels
	return s.kernel(x, y1, a, s.b, c, d, s.e, f)
}

// trainKoffset returns the phase offset selecting the A or B train.
func trainKoffset(trainA bool) uint32 {
	if trainA {
		return 24
	}
	return 8
}

// trainX computes the page/inquiry train phase from a clock: X = [CLK16-12
// + koffset + (CLK4-2,0 − CLK16-12) mod 16] mod 32 (spec §2.6.4.2). The
// CLK4-2,0 term steps twice per slot so two IDs go out per transmit slot.
func trainX(clk uint32, trainA bool) uint32 {
	hi := (clk >> 12) & 0x1F
	sweep := ((clk>>2)&0x7)<<1 | clk&1 // bits 4,3,2 then bit 0
	return (hi + trainKoffset(trainA) + ((sweep - hi) & 0x0F)) % 32
}

// Page returns the frequency the paging master transmits its ID on, from
// its estimate CLKE of the target's clock.
func (s *Selector) Page(clke uint32, trainA bool) int {
	return s.trainKernel(trainX(clke, trainA), 0)
}

// PageResp returns the frequency of the slave's page response (and the
// master's listening frequency) paired with the train phase of the ID
// that elicited it: same X, Y1 = 1.
func (s *Selector) PageResp(clke uint32, trainA bool) int {
	return s.trainKernel(trainX(clke, trainA), 1)
}

// Scan returns the page-scan (or, with the GIAC selector, inquiry-scan)
// listening frequency: X = CLKN16-12, which moves every 1.28 s.
func (s *Selector) Scan(clkn uint32) int {
	return s.trainKernel((clkn>>12)&0x1F, 0)
}

// RespForX returns the response frequency for an explicit train phase;
// the scanner uses its own scan phase here, which equals the sender's
// train phase whenever the ID was heard at all.
func (s *Selector) RespForX(x uint32) int {
	return s.trainKernel(x, 1)
}

// ScanX returns the scan phase for a native clock, exported so the scan
// state machines can pair Scan with RespForX.
func ScanX(clkn uint32) uint32 { return (clkn >> 12) & 0x1F }

// TrainPhase exposes trainX for the paging/inquiring state machines that
// must remember which phase each transmitted ID used.
func TrainPhase(clk uint32, trainA bool) uint32 { return trainX(clk, trainA) }
