package hop

import (
	"testing"
	"testing/quick"

	"repro/internal/access"
)

func TestPerm5IsPermutation(t *testing.T) {
	f := func(pHigh, pLow uint32) bool {
		seen := map[uint32]bool{}
		for z := uint32(0); z < 32; z++ {
			out := perm5(z, pHigh&0x1F, pLow&0x1FF)
			if out > 31 || seen[out] {
				return false
			}
			seen[out] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPerm5IdentityWithZeroControl(t *testing.T) {
	for z := uint32(0); z < 32; z++ {
		if perm5(z, 0, 0) != z {
			t.Fatalf("perm5(%d,0,0) = %d, not identity", z, perm5(z, 0, 0))
		}
	}
}

func TestBankCoversAllChannels(t *testing.T) {
	seen := map[int]bool{}
	for i := uint32(0); i < NumChannels; i++ {
		seen[bank(i)] = true
	}
	if len(seen) != NumChannels {
		t.Fatalf("bank covers %d channels, want %d", len(seen), NumChannels)
	}
	if bank(0) != 0 || bank(1) != 2 || bank(40) != 1 {
		t.Fatal("bank must list even channels first, then odd")
	}
}

func TestBasicInRangeAndVaries(t *testing.T) {
	s := NewSelector(Addr28(0x123456, 0x9B))
	seen := map[int]bool{}
	for clk := uint32(0); clk < 4096; clk += 4 {
		f := s.Basic(clk)
		if f < 0 || f >= NumChannels {
			t.Fatalf("Basic out of range: %d", f)
		}
		seen[f] = true
	}
	// Pseudo-random: a thousand hops should touch most of the band.
	if len(seen) < 60 {
		t.Fatalf("basic sequence only used %d channels", len(seen))
	}
}

func TestBasicAddressDependence(t *testing.T) {
	a := NewSelector(Addr28(0x111111, 0x11))
	b := NewSelector(Addr28(0x222222, 0x22))
	same := 0
	for clk := uint32(0); clk < 400; clk += 4 {
		if a.Basic(clk) == b.Basic(clk) {
			same++
		}
	}
	// Two piconets coincide only at the 1/79 chance level.
	if same > 10 {
		t.Fatalf("different addresses coincide on %d/100 hops", same)
	}
}

func TestBasicUniformity(t *testing.T) {
	s := NewSelector(Addr28(0x9E8B33, 0x00))
	counts := make([]int, NumChannels)
	const hops = 79 * 400
	for i := 0; i < hops; i++ {
		counts[s.Basic(uint32(i*2))]++
	}
	for ch, n := range counts {
		if n == 0 {
			t.Fatalf("channel %d never used in %d hops", ch, hops)
		}
		if n > hops/NumChannels*3 {
			t.Fatalf("channel %d used %d times, badly non-uniform", ch, n)
		}
	}
}

func TestTrainCoversSixteenFrequencies(t *testing.T) {
	s := NewSelector(Addr28(0xABCDEF, 0x5A))
	clke := uint32(0x12345)
	phases := map[uint32]bool{}
	freqs := map[int]bool{}
	// Step CLKE through one train (16 phases = 8 slots = 32 CLK ticks).
	for k := uint32(0); k < 32; k++ {
		clk := clke + k
		if clk&1 == 0 && (clk>>1)&1 == 0 { // master TX half-slots only
		}
		phases[TrainPhase(clk, true)] = true
		freqs[s.Page(clk, true)] = true
	}
	if len(phases) > TrainSize {
		t.Fatalf("train A spans %d phases, want <= %d", len(phases), TrainSize)
	}
	if len(freqs) > TrainSize {
		t.Fatalf("train A spans %d freqs, want <= %d", len(freqs), TrainSize)
	}
}

func TestTrainsAandBDisjointPhases(t *testing.T) {
	clke := uint32(0x4321)
	pa := map[uint32]bool{}
	pb := map[uint32]bool{}
	for k := uint32(0); k < 64; k++ {
		pa[TrainPhase(clke+k, true)] = true
		pb[TrainPhase(clke+k, false)] = true
	}
	for x := range pa {
		if pb[x] {
			t.Fatalf("phase %d in both trains", x)
		}
	}
	if len(pa)+len(pb) != NumScanFreqs {
		t.Fatalf("trains cover %d phases, want %d", len(pa)+len(pb), NumScanFreqs)
	}
}

// The property that makes paging work: the scan phase of the scanner is
// always inside the union of the two trains computed from a correct clock
// estimate, and paired response frequencies agree between both ends.
func TestPageHitGuarantee(t *testing.T) {
	f := func(lap uint32, uap uint8, clkn uint32) bool {
		lap &= 0xFFFFFF
		clkn &= 0x0FFFFFFF
		s := NewSelector(Addr28(lap, uap))
		scanFreq := s.Scan(clkn)
		scanX := ScanX(clkn)
		// The master's estimate equals the truth here; sweep one whole
		// train pair and check some transmitted phase matches the
		// scanner's phase (hence frequency).
		hit := false
		for k := uint32(0); k < 64 && !hit; k++ {
			for _, trainA := range []bool{true, false} {
				if TrainPhase(clkn+k, trainA) == scanX {
					if s.Page(clkn+k, trainA) != scanFreq {
						return false // same phase must give same freq
					}
					hit = true
				}
			}
		}
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResponsePairing(t *testing.T) {
	s := NewSelector(Addr28(access.GIAC, 0))
	for clk := uint32(0); clk < 256; clk++ {
		x := TrainPhase(clk, true)
		if s.PageResp(clk, true) != s.RespForX(x) {
			t.Fatalf("response freq mismatch at clk %d", clk)
		}
	}
}

func TestScanPhaseChangesEvery1_28s(t *testing.T) {
	s := NewSelector(Addr28(0x654321, 0x01))
	const ticksPerPhase = 1 << 12 // CLKN12 period in half-slots
	f0 := s.Scan(0)
	for clkn := uint32(0); clkn < ticksPerPhase; clkn += 64 {
		if s.Scan(clkn) != f0 {
			t.Fatal("scan frequency moved within a 1.28s window")
		}
	}
	changed := false
	for p := uint32(1); p < 32 && !changed; p++ {
		changed = s.Scan(p*ticksPerPhase) != f0
	}
	if !changed {
		t.Fatal("scan frequency never changes across windows")
	}
}

func TestScanSequenceLength(t *testing.T) {
	s := NewSelector(Addr28(0x00F00F, 0x0F))
	freqs := map[int]bool{}
	for p := uint32(0); p < 32; p++ {
		freqs[s.Scan(p<<12)] = true
	}
	// 32 phases map into up to 32 distinct channels; collisions possible
	// but the sequence must be non-trivial.
	if len(freqs) < 16 {
		t.Fatalf("scan sequence has only %d distinct freqs", len(freqs))
	}
}

func TestAddr28Packing(t *testing.T) {
	a := Addr28(0xFFFFFF, 0xFF)
	if a != 0x0FFFFFFF {
		t.Fatalf("Addr28 = %08x", a)
	}
	if Addr28(0x123456, 0xAB) != 0x123456|0x0B<<24 {
		t.Fatal("Addr28 must take only the low UAP nibble")
	}
}

func TestAllFrequenciesInRange(t *testing.T) {
	s := NewSelector(Addr28(0x9E8B33, 0))
	for clk := uint32(0); clk < 10000; clk += 7 {
		for _, f := range []int{
			s.Basic(clk), s.Page(clk, true), s.Page(clk, false),
			s.PageResp(clk, true), s.Scan(clk), s.RespForX(clk),
		} {
			if f < 0 || f >= NumChannels {
				t.Fatalf("frequency %d out of range at clk %d", f, clk)
			}
		}
	}
}
