package hop

import "testing"

// TestPerm5TableMatchesButterfly holds the precomputed permutation table
// to the 14-stage butterfly it replaced, across the full input space.
func TestPerm5TableMatchesButterfly(t *testing.T) {
	for ctl := uint32(0); ctl < 1<<14; ctl++ {
		for z := uint32(0); z < 32; z++ {
			got := perm5(z, ctl>>9, ctl&0x1FF)
			if want := perm5Butterfly(z, ctl); got != want {
				t.Fatalf("perm5(z=%d, ctl=%#x) = %d, butterfly = %d", z, ctl, got, want)
			}
		}
	}
}
