// voicecall sets up a headset-style SCO voice link: the piconet forms,
// the Link Manager negotiates an HV3 channel over the air, and both ends
// stream audio frames in reserved slots while an ACL data link keeps
// running underneath. Under channel noise the HV1/HV2/HV3 choice decides
// how the audio degrades.
package main

import (
	"fmt"
	"log"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/lmp"
	"repro/internal/packet"
)

func main() {
	sim := core.NewSimulation(core.Options{Seed: 9, BER: 1.0 / 400})
	phone := sim.AddDevice("phone", baseband.Config{Addr: baseband.BDAddr{LAP: 0x12AB34, UAP: 1}})
	headset := sim.AddDevice("headset", baseband.Config{Addr: baseband.BDAddr{LAP: 0x56CD78, UAP: 2}})
	phoneLM := lmp.Attach(phone)
	headsetLM := lmp.Attach(headset)

	links := sim.BuildPiconet(phone, headset)
	acl := links[0]
	fmt.Println("piconet up: phone (master) + headset (slave)")

	// The headset learns about the voice channel through LMP and wires
	// its microphone and speaker.
	micSample := byte(0)
	headsetLM.OnSCOEstablished = func(sco *baseband.SCOLink) {
		fmt.Printf("[headset] SCO established: %v every %d slots\n", sco.Type, sco.TscoSlots)
		sco.Source = func() []byte {
			micSample++
			frame := make([]byte, sco.Type.MaxPayload())
			for i := range frame {
				frame[i] = micSample
			}
			return frame
		}
	}

	// The phone requests the channel and counts received audio.
	frames, garbled := 0, 0
	phoneLM.RequestSCO(acl, packet.TypeHV3, 6, 0, func(sco *baseband.SCOLink) {
		if sco == nil {
			log.Fatal("SCO refused")
		}
		fmt.Printf("[phone  ] SCO accepted: %v every %d slots\n", sco.Type, sco.TscoSlots)
		sco.Sink = func(frame []byte) {
			frames++
			for _, b := range frame[1:] {
				if b != frame[0] {
					garbled++
					return
				}
			}
		}
	})

	// 2.5 simulated seconds of call, with a little data on the side.
	acl.Send([]byte("battery level: 80%"), packet.LLIDL2CAPStart)
	sim.RunSlots(4000)

	fmt.Printf("call stats: %d audio frames received, %d garbled (BER %.4f, HV3 unprotected)\n",
		frames, garbled, 1.0/400)
	tx, rx := core.Activity(headset)
	fmt.Printf("headset RF activity: tx %.2f%% rx %.2f%% — voice dominates the radio budget\n",
		tx*100, rx*100)
}
