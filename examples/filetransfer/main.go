// filetransfer pushes a "file" over an L2CAP channel (the OBEX-style use
// case of the paper's stack diagram): connect, open a channel on a PSM,
// stream SDUs with segmentation/reassembly over the ACL link, and
// compare packet types under a noisy channel.
package main

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/l2cap"
	"repro/internal/packet"
)

const filePSM = 0x1005

func transfer(ber float64, ptype packet.Type, fileSize int) (slots uint64, ok bool) {
	sim := core.NewSimulation(core.Options{Seed: 31, BER: ber})
	sender := sim.AddDevice("sender", baseband.Config{Addr: baseband.BDAddr{LAP: 0xAA0001, UAP: 1}})
	receiver := sim.AddDevice("receiver", baseband.Config{Addr: baseband.BDAddr{LAP: 0xBB0002, UAP: 2}})
	sMux := l2cap.Attach(sender)
	rMux := l2cap.Attach(receiver)

	links := sim.BuildPiconet(sender, receiver)
	links[0].PacketType = ptype
	receiver.MasterLink().PacketType = ptype

	// The file travels as 1 kB SDUs; the receiver reassembles and counts.
	received := 0
	rMux.RegisterPSM(filePSM, func(ch *l2cap.Channel) {
		ch.OnSDU = func(sdu []byte) { received += len(sdu) }
	})

	start := sim.Now()
	sMux.Connect(links[0], filePSM, func(ch *l2cap.Channel, err error) {
		if err != nil {
			return
		}
		const sduSize = 1024
		for sent := 0; sent < fileSize; sent += sduSize {
			n := min(sduSize, fileSize-sent)
			if err := ch.Send(make([]byte, n)); err != nil {
				return
			}
		}
	})

	// Run until everything arrived or we give up.
	for i := 0; i < 200 && received < fileSize; i++ {
		sim.RunSlots(500)
	}
	return sim.Now() - start, received >= fileSize
}

func main() {
	const fileSize = 16 * 1024
	fmt.Printf("transferring a %d kB file over L2CAP\n\n", fileSize/1024)
	fmt.Printf("%-8s %-10s %12s %12s\n", "type", "BER", "slots", "eff_kbps")
	for _, c := range []struct {
		ptype packet.Type
		ber   float64
		label string
	}{
		{packet.TypeDM1, 0, "0"},
		{packet.TypeDH5, 0, "0"},
		{packet.TypeDM3, 1.0 / 1000, "1/1000"},
		{packet.TypeDH5, 1.0 / 1000, "1/1000"},
	} {
		slots, ok := transfer(c.ber, c.ptype, fileSize)
		if !ok {
			fmt.Printf("%-8v %-10s %12s %12s\n", c.ptype, c.label, "stalled", "-")
			continue
		}
		kbps := float64(fileSize) * 8 / 1000 / (float64(slots) * 625e-6)
		fmt.Printf("%-8v %-10s %12d %12.1f\n", c.ptype, c.label, slots, kbps)
	}
	fmt.Println("\nDH5 wins on a clean channel; under noise its 2871-bit packets die")
	fmt.Println("and the FEC-protected DM types take over — the packet-choice")
	fmt.Println("trade-off the paper's introduction motivates.")
}
