// Coexistence walkthrough: four independent piconets share the 79
// channels of the ISM band with an 802.11-style jammer parked on
// channels 30-52, and every piconet defends itself with adaptive
// frequency hopping — the master tallies per-frequency reception errors,
// classifies channels good/bad, and pushes the learned hop set to its
// slave over LMP. This is the shared-medium scenario of the paper's
// coexistence references [3-5] with the v1.2 AFH fix learned on the air
// instead of hand-picked.
//
// The whole world is one netspec.Spec: the piconet, traffic and jammer
// stanzas below are the entire setup, and the unified Metrics surface
// replaces hand-collected counters.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hop"
	"repro/internal/netspec"
)

func main() {
	// An 802.11 DSSS network occupies 23 channels at 90% duty: any
	// Bluetooth packet on channels 30-52 is destroyed 9 times out of 10.
	const jamLo, jamHi, jamDuty = 30, 52, 0.9

	// One world, one shared channel; everything derives from the seed.
	// Four piconets, each learning its channel map every 1500 slots,
	// each saturated by a bulk ACL pump. The jammer is installed after
	// construction, so the piconets assemble on a clean medium.
	sim := core.NewSimulation(core.Options{Seed: 2005})
	world, err := netspec.Build(sim, netspec.Spec{
		Piconets: netspec.HomogeneousPiconets(4, 1, netspec.WithAdaptiveAFH(1500), netspec.WithTpoll(netspec.TpollNever)),
		Traffic:  []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
		Jammers:  []netspec.Jammer{{Lo: jamLo, Hi: jamHi, Duty: jamDuty}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("built %d piconets on one medium, jammer on channels %d-%d (duty %.0f%%)\n\n",
		len(world.Piconets), jamLo, jamHi, jamDuty*100)

	// Saturating master-to-slave traffic plus the classification loops.
	world.Start()

	// Let every master see two assessment windows and switch maps.
	warmup := netspec.ConvergenceSlots(1500)
	sim.RunSlots(warmup)
	fmt.Printf("after %d warm-up slots:\n", warmup)
	for _, p := range world.Piconets {
		cm := p.CurrentMap()
		if cm == nil {
			fmt.Printf("  piconet %d: still hopping all %d channels\n", p.Index, hop.NumChannels)
			continue
		}
		excluded := 0
		for ch := jamLo; ch <= jamHi; ch++ {
			if !cm.Used(ch) {
				excluded++
			}
		}
		fmt.Printf("  piconet %d: learned map uses %d channels, excludes %d/%d jammed ones (%d update(s))\n",
			p.Index, cm.N(), excluded, jamHi-jamLo+1, p.MapUpdates)
	}

	// Measure a clean window: ResetMetrics opens it (snapshotting the
	// per-frequency channel counters), one Metrics read closes the
	// books — goodput, collision attribution and the per-channel
	// breakdown all come from the same surface.
	const measure = 8000
	world.ResetMetrics()
	sim.RunSlots(measure)
	m := world.Metrics()
	fmt.Printf("\nover a %d-slot measurement window:\n", measure)
	for i := range world.Piconets {
		fmt.Printf("  piconet %d: %.1f kbps goodput\n", i, m.PiconetGoodputKbps(i))
	}
	fmt.Printf("  collisions: %d inter-piconet, %d intra-piconet; %d retransmissions\n",
		m.Inter, m.Intra, m.Retransmits)

	// The metrics carry the window's per-frequency delta; with the
	// learned maps installed, essentially nothing hops into the jammed
	// band any more.
	inBand, outBand := 0, 0
	for ch, fc := range m.PerFreq {
		if ch >= jamLo && ch <= jamHi {
			inBand += fc.Transmissions
		} else {
			outBand += fc.Transmissions
		}
	}
	fmt.Printf("  transmissions this window: %d inside the jammed band, %d outside (%.2f%% in-band;\n"+
		"  a full-band hopper would put ~%.0f%% there)\n",
		inBand, outBand, float64(inBand)/float64(inBand+outBand)*100,
		float64(jamHi-jamLo+1)/float64(hop.NumChannels)*100)
}
