// Coexistence walkthrough: four independent piconets share the 79
// channels of the ISM band with an 802.11-style jammer parked on
// channels 30-52, and every piconet defends itself with adaptive
// frequency hopping — the master tallies per-frequency reception errors,
// classifies channels good/bad, and pushes the learned hop set to its
// slave over LMP. This is the shared-medium scenario of the paper's
// coexistence references [3-5] with the v1.2 AFH fix learned on the air
// instead of hand-picked.
package main

import (
	"fmt"

	"repro/internal/coex"
	"repro/internal/core"
	"repro/internal/hop"
)

func main() {
	// One world, one shared channel; everything derives from the seed.
	sim := core.NewSimulation(core.Options{Seed: 2005})

	// An 802.11 DSSS network occupies 23 channels at 90% duty: any
	// Bluetooth packet on channels 30-52 is destroyed 9 times out of 10.
	const jamLo, jamHi, jamDuty = 30, 52, 0.9
	sim.Ch.AddJammer(jamLo, jamHi, jamDuty)

	// Four piconets, each learning its channel map every 1500 slots.
	net := coex.Build(sim, coex.Config{
		Piconets:          4,
		AFH:               coex.AFHAdaptive,
		AssessWindowSlots: 1500,
	})
	fmt.Printf("built %d piconets on one medium, jammer on channels %d-%d (duty %.0f%%)\n\n",
		len(net.Piconets), jamLo, jamHi, jamDuty*100)

	// Saturating master-to-slave traffic plus the classification loops.
	net.StartTraffic()

	// Let every master see two assessment windows and switch maps.
	warmup := coex.ConvergenceSlots(1500)
	sim.RunSlots(warmup)
	fmt.Printf("after %d warm-up slots:\n", warmup)
	for _, p := range net.Piconets {
		cm := p.CurrentMap()
		if cm == nil {
			fmt.Printf("  piconet %d: still hopping all %d channels\n", p.Index, hop.NumChannels)
			continue
		}
		excluded := 0
		for ch := jamLo; ch <= jamHi; ch++ {
			if !cm.Used(ch) {
				excluded++
			}
		}
		fmt.Printf("  piconet %d: learned map uses %d channels, excludes %d/%d jammed ones (%d update(s))\n",
			p.Index, cm.N(), excluded, jamHi-jamLo+1, p.MapUpdates)
	}

	// Measure a clean window: goodput per piconet plus the collision
	// attribution the shared medium produces. Snapshot the channel's
	// per-frequency counters first, so the window's traffic placement
	// can be isolated below.
	const measure = 8000
	net.ResetStats()
	before := sim.Ch.Stats()
	sim.RunSlots(measure)
	tot := net.Totals()
	fmt.Printf("\nover a %d-slot measurement window:\n", measure)
	for i, bytes := range tot.PerPiconet {
		fmt.Printf("  piconet %d: %.1f kbps goodput\n", i, coex.GoodputKbps(bytes, measure))
	}
	fmt.Printf("  collisions: %d inter-piconet, %d intra-piconet; %d retransmissions\n",
		tot.Inter, tot.Intra, tot.Retransmits)

	// The channel keeps a per-frequency breakdown; differencing the
	// snapshots shows where this window's traffic actually landed. With
	// the learned maps installed, essentially nothing hops into the
	// jammed band any more.
	after := sim.Ch.Stats()
	inBand, outBand := 0, 0
	for ch := range after.PerFreq {
		delta := after.PerFreq[ch].Transmissions - before.PerFreq[ch].Transmissions
		if ch >= jamLo && ch <= jamHi {
			inBand += delta
		} else {
			outBand += delta
		}
	}
	fmt.Printf("  transmissions this window: %d inside the jammed band, %d outside (%.2f%% in-band;\n"+
		"  a full-band hopper would put ~%.0f%% there)\n",
		inBand, outBand, float64(inBand)/float64(inBand+outBand)*100,
		float64(jamHi-jamLo+1)/float64(hop.NumChannels)*100)
}
