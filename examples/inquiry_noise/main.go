// inquiry_noise reproduces the paper's headline experiment at small
// scale: how channel noise affects piconet creation. It sweeps the BER,
// runs repeated inquiry+page trials, and prints the mean durations and
// failure probabilities (Figs 6-8 in miniature).
package main

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	const seeds = 12
	const timeout = 2048 // the paper's 1.28 s

	fmt.Println("BER sweep: inquiry + page with 1.28s timeouts, 12 trials each")
	fmt.Printf("%-8s %12s %12s %10s %10s\n", "BER", "inq_mean_TS", "page_mean_TS", "inq_fail", "page_fail")

	for _, ber := range []struct {
		label string
		value float64
	}{
		{"0", 0}, {"1/100", 0.01}, {"1/60", 1.0 / 60}, {"1/30", 1.0 / 30},
	} {
		var inqTS, pageTS stats.Sample
		var inqFail, pageFail stats.Counter
		for seed := 0; seed < seeds; seed++ {
			sim := core.NewSimulation(core.Options{Seed: uint64(seed)*31 + 7, BER: ber.value})
			master := sim.AddDevice("master", baseband.Config{
				Addr: baseband.BDAddr{LAP: 0x21043A, UAP: 0x47},
			})
			slave := sim.AddDevice("slave", baseband.Config{
				Addr: baseband.BDAddr{LAP: 0x5A3F19, UAP: 0x9C},
			})
			out := sim.RunCreation(master, slave, timeout)
			inqFail.Observe(out.InquiryOK)
			if out.InquiryOK {
				inqTS.Add(float64(out.InquirySlots))
				pageFail.Observe(out.PageOK)
				if out.PageOK {
					pageTS.Add(float64(out.PageSlots))
				}
			}
		}
		fmt.Printf("%-8s %12.0f %12.1f %9.0f%% %9.0f%%\n",
			ber.label, inqTS.Mean(), pageTS.Mean(),
			inqFail.FailureRate()*100, pageFail.FailureRate()*100)
	}
	fmt.Println("\nThe paper's conclusion holds: the page phase, not inquiry, is the")
	fmt.Println("bottleneck for piconet creation in a noisy channel.")
}
