// powermodes compares the RF activity — and with the power profile, the
// average front-end power — of a slave in ACTIVE, SNIFF, HOLD and PARK
// modes, the design space of the paper's section 3.2. The mode changes
// run over the air through the Link Manager Protocol.
package main

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/lmp"
	"repro/internal/power"
)

func main() {
	profile := power.DefaultProfile()
	fmt.Printf("%-28s %10s %10s %12s\n", "mode", "tx_act", "rx_act", "avg_power_mW")

	measure := func(name string, configure func(master, slave *lmp.Manager, ml *baseband.Link)) {
		sim := core.NewSimulation(core.Options{Seed: 7})
		mdev := sim.AddDevice("master", baseband.Config{Addr: baseband.BDAddr{LAP: 0x111111, UAP: 1}})
		sdev := sim.AddDevice("slave", baseband.Config{Addr: baseband.BDAddr{LAP: 0x222222, UAP: 2}})
		mlm, slm := lmp.Attach(mdev), lmp.Attach(sdev)
		links := sim.BuildPiconet(mdev, sdev)

		configure(mlm, slm, links[0])
		// Let the LMP negotiation and a first mode cycle settle.
		sim.RunSlots(1500)
		core.ResetMeters(sdev)
		sim.RunSlots(20000) // 12.5 simulated seconds
		tx, rx := core.Activity(sdev)
		fmt.Printf("%-28s %9.3f%% %9.3f%% %12.3f\n",
			name, tx*100, rx*100, profile.Average(sdev.TxMeter, sdev.RxMeter))
	}

	measure("active", func(m, s *lmp.Manager, l *baseband.Link) {})
	measure("sniff Tsniff=40", func(m, s *lmp.Manager, l *baseband.Link) {
		m.RequestSniff(l, 40, 2, 0, nil)
	})
	measure("sniff Tsniff=100", func(m, s *lmp.Manager, l *baseband.Link) {
		m.RequestSniff(l, 100, 2, 0, nil)
	})
	measure("hold Thold=200 (repeating)", func(m, s *lmp.Manager, l *baseband.Link) {
		// Repeating hold is driven at baseband level on both ends (the
		// paper's Fig 12 workload).
		l.EnterHoldRepeating(200)
		s.Dev().MasterLink().EnterHoldRepeating(200)
	})
	measure("hold Thold=800 (repeating)", func(m, s *lmp.Manager, l *baseband.Link) {
		l.EnterHoldRepeating(800)
		s.Dev().MasterLink().EnterHoldRepeating(800)
	})
	measure("park beacon=64", func(m, s *lmp.Manager, l *baseband.Link) {
		m.RequestPark(l, 64, nil)
	})

	fmt.Println("\nsniff pays off for long Tsniff, hold for long Thold, and park is")
	fmt.Println("the cheapest way to stay synchronised — matching the paper's Figs 11-12.")
}
