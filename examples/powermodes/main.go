// powermodes compares the RF activity — and with the power profile, the
// average front-end power — of a slave in ACTIVE, SNIFF, HOLD and PARK
// modes, the design space of the paper's section 3.2. Each arm is one
// netspec.Spec: the piconet stanza plus a PowerMode stanza, with an
// activity probe feeding the measurement — LMP-negotiated transitions
// remain available at run time through the piconet's LMP manager.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/power"
)

func main() {
	profile := power.DefaultProfile()
	fmt.Printf("%-28s %10s %10s %12s\n", "mode", "tx_act", "rx_act", "avg_power_mW")

	measure := func(name string, modes ...netspec.PowerMode) {
		sim := core.NewSimulation(core.Options{Seed: 7})
		world, err := netspec.Build(sim, netspec.Spec{
			Piconets: []netspec.Piconet{netspec.NewPiconet(1)},
			Modes:    modes,
			Probes: []netspec.Probe{
				{Name: "slave", Kind: netspec.ProbeSlaveActivity, Piconet: 0},
			},
		})
		if err != nil {
			panic(err)
		}
		// Let the mode entry and a first cycle settle, then measure a
		// clean 12.5-simulated-second window.
		sim.RunSlots(1500)
		world.ResetMetrics()
		sim.RunSlots(20000)
		m := world.Metrics()
		act := m.Probes["slave"]
		slave := world.Piconets[0].Slaves[0]
		fmt.Printf("%-28s %9.3f%% %9.3f%% %12.3f\n",
			name, act.Tx.Mean()*100, act.Rx.Mean()*100,
			profile.Average(slave.TxMeter, slave.RxMeter))
	}

	measure("active")
	measure("sniff Tsniff=40",
		netspec.PowerMode{Kind: netspec.SniffMode, TsniffSlots: 40})
	measure("sniff Tsniff=100",
		netspec.PowerMode{Kind: netspec.SniffMode, TsniffSlots: 100})
	measure("hold Thold=200 (repeating)",
		netspec.PowerMode{Kind: netspec.HoldMode, TholdSlots: 200})
	measure("hold Thold=800 (repeating)",
		netspec.PowerMode{Kind: netspec.HoldMode, TholdSlots: 800})
	measure("park beacon=64",
		netspec.PowerMode{Kind: netspec.ParkMode, BeaconSlots: 64})

	fmt.Println("\nsniff pays off for long Tsniff, hold for long Thold, and park is")
	fmt.Println("the cheapest way to stay synchronised — matching the paper's Figs 11-12.")
}
