// Quickstart: build a two-device world, discover, connect and exchange
// data through the HCI API — the ten-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/hci"
)

func main() {
	// A simulation owns the event kernel and the shared radio channel.
	// Everything is deterministic given the seed.
	sim := core.NewSimulation(core.Options{Seed: 42, BER: 0.001})

	// Two devices with HCI front ends: a laptop and a phone.
	laptop := sim.AddController("laptop", baseband.Config{
		Addr: baseband.BDAddr{LAP: 0x10AB42, UAP: 0x12, NAP: 0x00C0},
	})
	phone := sim.AddController("phone", baseband.Config{
		Addr: baseband.BDAddr{LAP: 0x77DE01, UAP: 0x34, NAP: 0x00C1},
	})

	// Event handlers: the laptop drives the connection, the phone answers.
	var handle hci.ConnHandle
	laptop.Events = func(e hci.Event) {
		switch ev := e.(type) {
		case hci.InquiryResultEvent:
			fmt.Printf("[laptop] discovered %v (clock %d)\n", ev.Result.Addr, ev.Result.CLKN)
		case hci.InquiryCompleteEvent:
			if !ev.OK {
				log.Fatal("inquiry failed")
			}
			// Move the phone from inquiry scan to page scan, then connect.
			phone.WriteScanEnable(false, true)
			if err := laptop.CreateConnection(phone.Dev().Addr(), 2048); err != nil {
				log.Fatal(err)
			}
		case hci.ConnectionCompleteEvent:
			if !ev.OK {
				log.Fatal("connection failed")
			}
			handle = ev.Handle
			fmt.Printf("[laptop] connected to %v, handle %d\n", ev.Peer, ev.Handle)
			if err := laptop.SendData(handle, []byte("ping from the laptop")); err != nil {
				log.Fatal(err)
			}
		case hci.DataEvent:
			fmt.Printf("[laptop] received %q\n", ev.Payload)
		}
	}
	replied := false
	phone.Events = func(e hci.Event) {
		switch ev := e.(type) {
		case hci.DataEvent:
			// Long payloads arrive as DM1-sized chunks; reply to the burst
			// once.
			fmt.Printf("[phone ] received chunk %q\n", ev.Payload)
			if !replied {
				replied = true
				if err := phone.SendData(ev.Handle, []byte("pong!")); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Make the phone discoverable and start discovery.
	phone.WriteScanEnable(true, false)
	laptop.Inquiry(4096, 1)

	// Run the world for four simulated seconds.
	sim.RunSlots(6400)

	ltx, lrx := core.Activity(laptop.Dev())
	ptx, prx := core.Activity(phone.Dev())
	fmt.Printf("RF activity — laptop: tx %.3f%% rx %.3f%%; phone: tx %.3f%% rx %.3f%%\n",
		ltx*100, lrx*100, ptx*100, prx*100)
}
