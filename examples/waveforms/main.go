// waveforms regenerates the paper's Fig 5 (piconet creation with three
// slaves) and Fig 9 (two slaves in sniff mode) as VCD files that any
// waveform viewer (GTKWave etc.) can open: the enable_rx_RF and
// enable_tx_RF signals show exactly the RF windows discussed in the
// paper.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	f5, err := os.Create("fig5_creation.vcd")
	if err != nil {
		log.Fatal(err)
	}
	links, err := experiments.Fig5Waveforms(f5, 1)
	if cerr := f5.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fig5_creation.vcd: piconet creation, master + %d slaves\n", links)
	fmt.Println("  look at: slaves' enable_rx_RF solid while in page scan, then")
	fmt.Println("  shrinking to slot-start windows once they join the piconet")

	f9, err := os.Create("fig9_sniff.vcd")
	if err != nil {
		log.Fatal(err)
	}
	err = experiments.Fig9Waveforms(f9, 20, 2, 1)
	if cerr := f9.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fig9_sniff.vcd: slaves 2 and 3 in sniff mode (Tsniff=20, 2-slot attempt)")
	fmt.Println("  look at: their enable_rx_RF pulsing only at sniff anchors while")
	fmt.Println("  slave1 keeps its every-slot carrier-sense windows")
}
